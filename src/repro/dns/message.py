"""DNS message encoding and decoding (RFC 1035 §4, RFC 6891 for EDNS)."""

from __future__ import annotations

import os

from repro.dns.edns import Edns
from repro.dns.flags import Flag
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rdata import parse_rdata
from repro.dns.rdata.opt import OPT
from repro.dns.rrset import RRset
from repro.dns.types import Opcode, RdataClass, RdataType
from repro.dns.wire import (
    MAX_DECODE_RECORDS,
    MAX_EDNS_OPTIONS,
    Reader,
    WireError,
    Writer,
)

HEADER_LENGTH = 12

#: Flag() construction is an enum metaclass call; decode resolves the
#: masked flag word through this table instead (7 bits → ≤128 entries).
_FLAG_CACHE = {}


class Question:
    """A question section entry."""

    __slots__ = ("name", "rrtype", "rdclass")

    def __init__(self, name, rrtype, rdclass=RdataClass.IN):
        self.name = name if type(name) is Name else Name.from_text(name)
        self.rrtype = int(rrtype)
        if type(rdclass) is RdataClass:
            self.rdclass = rdclass
        else:
            self.rdclass = RdataClass(int(rdclass))

    def __eq__(self, other):
        if not isinstance(other, Question):
            return NotImplemented
        return (
            self.name == other.name
            and self.rrtype == other.rrtype
            and self.rdclass == other.rdclass
        )

    def __hash__(self):
        return hash((self.name, self.rrtype, self.rdclass))

    def __repr__(self):
        return (
            f"Question({self.name.to_text()!r}, "
            f"{RdataType.to_text(self.rrtype)}, {self.rdclass.name})"
        )


class Message:
    """A complete DNS message.

    Sections hold :class:`~repro.dns.rrset.RRset` objects. EDNS state, if
    any, lives in :attr:`edns`; the OPT pseudo-record is synthesised into
    the additional section at encode time and lifted out at decode time.
    """

    def __init__(self, msg_id=None):
        self.id = int.from_bytes(os.urandom(2), "big") if msg_id is None else int(msg_id)
        self.flags = Flag(0)
        self.opcode = Opcode.QUERY
        self.rcode = Rcode.NOERROR
        self.question = []
        self.answer = []
        self.authority = []
        self.additional = []
        self.edns = None
        self._wire_memo = None

    # -- flag helpers -----------------------------------------------------

    def set_flag(self, flag, value=True):
        if value:
            self.flags |= flag
        else:
            self.flags &= ~flag
        return self

    def has_flag(self, flag):
        return bool(self.flags & flag)

    @property
    def is_response(self):
        return self.has_flag(Flag.QR)

    @property
    def authenticated(self):
        """The AD bit: data was validated by the responding resolver."""
        return self.has_flag(Flag.AD)

    # -- EDNS helpers -----------------------------------------------------

    def use_edns(self, payload_size=1232, dnssec_ok=False):
        self.edns = Edns(payload_size=payload_size, dnssec_ok=dnssec_ok)
        return self.edns

    @property
    def dnssec_ok(self):
        return bool(self.edns and self.edns.dnssec_ok)

    def extended_errors(self):
        """Extended DNS Errors attached to this message (RFC 8914)."""
        return self.edns.extended_errors() if self.edns else []

    # -- section access ---------------------------------------------------

    def find_rrset(self, section, name, rrtype):
        """First RRset in *section* matching owner name and type, or None."""
        name = Name.from_text(name)
        for rrset in section:
            if rrset.name == name and int(rrset.rrtype) == int(rrtype):
                return rrset
        return None

    def get_rrsets(self, section, rrtype):
        """All RRsets of the given type in *section*."""
        return [rrset for rrset in section if int(rrset.rrtype) == int(rrtype)]

    def all_rrsets(self):
        return self.answer + self.authority + self.additional

    def add_rrset(self, section, rrset):
        """Merge *rrset* into *section*, coalescing with an existing RRset."""
        existing = self.find_rrset(section, rrset.name, rrset.rrtype)
        if existing is None:
            section.append(rrset.copy())
        else:
            for rdata in rrset:
                existing.add(rdata)
        return self

    # -- wire format --------------------------------------------------------

    def encode(self):
        """Wire bytes, memoized for the send-side hot path.

        A campaign resends identical query templates thousands of times
        (transport retries, TCP fallback, per-shard clients): the first
        call pays the full :meth:`to_wire`, later calls splice the current
        ``id`` into the cached bytes, so :meth:`refresh_id` between sends
        stays cheap. The memo is **not** invalidated on section edits —
        callers that mutate a message after sending must use
        :meth:`to_wire` (servers building responses already do).
        """
        memo = self._wire_memo
        if memo is None:
            memo = self.to_wire()
            self._wire_memo = memo
            return memo
        return self.id.to_bytes(2, "big") + memo[2:]

    def refresh_id(self):
        """Redraw the message id (a resend that must not match stale replies)."""
        self.id = int.from_bytes(os.urandom(2), "big")
        return self

    def to_wire(self, max_size=None):
        """Encode to wire bytes; sets TC and truncates if *max_size* exceeded."""
        writer = Writer()
        flags_word = (
            int(self.flags)
            | ((int(self.opcode) & 0xF) << 11)
            | (int(self.rcode) & 0xF)
        )
        writer.write_u16(self.id)
        writer.write_u16(flags_word)
        writer.write_u16(len(self.question))
        additional = list(self.additional)
        if self.edns is not None:
            additional.append(self._opt_rrset())
        # Section counts are per-RR, not per-RRset.
        writer.write_u16(sum(len(r) for r in self.answer))
        writer.write_u16(sum(len(r) for r in self.authority))
        writer.write_u16(sum(len(r) for r in additional))
        for question in self.question:
            writer.write_name(question.name)
            writer.write_u16(question.rrtype)
            writer.write_u16(int(question.rdclass))
        for section in (self.answer, self.authority, additional):
            for rrset in section:
                self._write_rrset(writer, rrset)
        wire = writer.getvalue()
        if max_size is not None and len(wire) > max_size:
            wire = self._truncated_wire(max_size)
        return wire

    def _truncated_wire(self, max_size):
        """Re-encode with answers dropped and TC set (good enough for UDP sim)."""
        clone = Message(self.id)
        clone.flags = self.flags | Flag.TC
        clone.opcode = self.opcode
        clone.rcode = self.rcode
        clone.question = list(self.question)
        clone.edns = self.edns
        return clone.to_wire()

    def _opt_rrset(self):
        rrset = RRset(
            Name(()),
            RdataType.OPT,
            self.edns.ttl_field(int(self.rcode)),
            [self.edns.to_opt_rdata()],
            # OPT abuses CLASS for payload size; bypass RdataClass enum.
        )
        rrset.rdclass = self.edns.payload_size
        return rrset

    @staticmethod
    def _write_rrset(writer, rrset):
        for rdata in rrset.rdatas:
            writer.write_name(rrset.name)
            writer.write_u16(int(rrset.rrtype))
            writer.write_u16(int(rrset.rdclass))
            writer.write_u32(rrset.ttl)
            length_at = len(writer)
            writer.write_u16(0)
            start = len(writer)
            rdata.write_wire(writer)
            writer.set_u16(length_at, len(writer) - start)

    @classmethod
    def from_wire(cls, wire):
        """Decode a message; raises :class:`WireError` on malformed input.

        The contract holds for arbitrary garbage bytes: decode errors
        surfacing from enum conversions or rdata parsers (ValueError,
        IndexError, ...) are normalised to :class:`WireError` so callers
        can treat "does not parse" as one condition.
        """
        try:
            return cls._parse_wire(wire)
        except WireError:
            raise
        except (ValueError, IndexError, KeyError) as exc:
            raise WireError(f"malformed message: {exc}") from exc

    @classmethod
    def _parse_wire(cls, wire):
        reader = Reader(wire)
        if reader.remaining() < HEADER_LENGTH:
            raise WireError("message shorter than header")
        msg = cls(reader.read_u16())
        flags_word = reader.read_u16()
        flag_bits = flags_word & 0x87B0
        flags = _FLAG_CACHE.get(flag_bits)
        if flags is None:
            flags = _FLAG_CACHE.setdefault(flag_bits, Flag(flag_bits))
        msg.flags = flags
        opcode_value = (flags_word >> 11) & 0xF
        try:
            msg.opcode = Opcode(opcode_value)
        except ValueError:
            raise WireError(f"unknown opcode {opcode_value}") from None
        rcode_low = flags_word & 0xF
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        total_records = qdcount + ancount + nscount + arcount
        if total_records > MAX_DECODE_RECORDS:
            raise WireError(
                f"message claims {total_records} records "
                f"(decode cap {MAX_DECODE_RECORDS})"
            )
        for __ in range(qdcount):
            name = reader.read_name()
            rrtype = reader.read_u16()
            rdclass = reader.read_u16()
            msg.question.append(Question(name, rrtype, rdclass))
        msg.answer = cls._read_section(reader, ancount, msg)
        msg.authority = cls._read_section(reader, nscount, msg)
        msg.additional = cls._read_section(reader, arcount, msg)
        high = msg.edns.ext_rcode_high if msg.edns else 0
        msg.rcode = Rcode((high << 4) | rcode_low) if ((high << 4) | rcode_low) in Rcode._value2member_map_ else (high << 4) | rcode_low
        return msg

    @staticmethod
    def _read_section(reader, count, msg):
        section = []
        # RRset merge index: without it a section of n records that never
        # coalesce costs O(n²) scans — the parse-work amplification the
        # decode caps exist to prevent; with it the caps are belt and braces.
        index = {}
        for __ in range(count):
            name = reader.read_name()
            rrtype = reader.read_u16()
            rdclass = reader.read_u16()
            ttl = reader.read_u32()
            rdlength = reader.read_u16()
            rdata = parse_rdata(rrtype, reader, rdlength)
            if rrtype == RdataType.OPT:
                msg.edns = Edns.from_opt(rdata, rdclass, ttl)
                if len(msg.edns.options) > MAX_EDNS_OPTIONS:
                    raise WireError(
                        f"OPT record carries {len(msg.edns.options)} options "
                        f"(decode cap {MAX_EDNS_OPTIONS})"
                    )
                continue
            existing = index.get((name, rrtype, rdclass))
            if existing is not None:
                existing.add(rdata)
                continue
            rrset = RRset(name, rrtype, ttl, [rdata], RdataClass(rdclass) if rdclass in RdataClass._value2member_map_ else RdataClass.IN)
            section.append(rrset)
            index[(name, rrtype, rdclass)] = rrset
        return section

    def __repr__(self):
        q = self.question[0] if self.question else None
        return (
            f"<Message id={self.id} {Rcode.to_text(self.rcode)} "
            f"[{Flag.to_text(self.flags)}] q={q!r} "
            f"an={len(self.answer)} ns={len(self.authority)} ar={len(self.additional)}>"
        )


def make_query(name, rrtype, rdclass=RdataClass.IN, want_dnssec=False, payload_size=1232, recursion_desired=True, msg_id=None):
    """Build a standard query message.

    ``want_dnssec=True`` attaches EDNS with the DO bit so that signed
    responses include RRSIG/NSEC3 material — exactly what the paper's
    scanners send.
    """
    msg = Message(msg_id)
    msg.set_flag(Flag.RD, recursion_desired)
    msg.question.append(Question(name, rrtype, rdclass))
    if want_dnssec or payload_size:
        msg.use_edns(payload_size=payload_size, dnssec_ok=want_dnssec)
    return msg


def make_response(query, recursion_available=False):
    """Build an empty response mirroring *query*'s id, question, and RD."""
    msg = Message(query.id)
    msg.set_flag(Flag.QR)
    msg.set_flag(Flag.RD, query.has_flag(Flag.RD))
    msg.set_flag(Flag.RA, recursion_available)
    msg.opcode = query.opcode
    msg.question = list(query.question)
    if query.edns is not None:
        msg.use_edns(dnssec_ok=query.edns.dnssec_ok)
    return msg
