"""NSEC/NSEC3 type bitmaps (RFC 4034 §4.1.2, RFC 5155 §3.2.1).

A type bitmap encodes the set of RR types present at a name as a sequence of
``(window, length, bitmap)`` blocks. Window *w* covers types
``w*256 .. w*256+255``; bit 0 of the first octet is type ``w*256``.
"""

from repro.dns.types import RdataType


def encode_bitmap(types):
    """Encode an iterable of RR type codes into wire-format bitmap blocks."""
    windows = {}
    for rrtype in sorted(set(int(t) for t in types)):
        if not 0 <= rrtype <= 0xFFFF:
            raise ValueError(f"RR type out of range: {rrtype}")
        window, offset = divmod(rrtype, 256)
        octets = windows.setdefault(window, bytearray(32))
        octets[offset // 8] |= 0x80 >> (offset % 8)
    out = bytearray()
    for window in sorted(windows):
        octets = windows[window]
        length = 32
        while length > 0 and octets[length - 1] == 0:
            length -= 1
        if length == 0:
            continue
        out.append(window)
        out.append(length)
        out.extend(octets[:length])
    return bytes(out)


def decode_bitmap(wire):
    """Decode wire-format bitmap blocks into a sorted list of type codes."""
    types = []
    pos = 0
    previous_window = -1
    while pos < len(wire):
        if pos + 2 > len(wire):
            raise ValueError("truncated type bitmap block header")
        window = wire[pos]
        length = wire[pos + 1]
        if window <= previous_window:
            raise ValueError("type bitmap windows out of order")
        if not 1 <= length <= 32:
            raise ValueError(f"invalid bitmap block length {length}")
        if pos + 2 + length > len(wire):
            raise ValueError("truncated type bitmap block body")
        block = wire[pos + 2 : pos + 2 + length]
        for index, octet in enumerate(block):
            for bit in range(8):
                if octet & (0x80 >> bit):
                    types.append(window * 256 + index * 8 + bit)
        previous_window = window
        pos += 2 + length
    return types


def bitmap_to_text(types):
    """Render type codes as space-separated mnemonics, NSEC presentation style."""
    return " ".join(RdataType.to_text(t) for t in types)
