"""DNS wire-format substrate.

A from-scratch implementation of the DNS message format (RFC 1035) with the
record types and EDNS machinery needed by DNSSEC (RFC 4034/4035), NSEC3
(RFC 5155), and Extended DNS Errors (RFC 8914).

Public surface:

- :class:`repro.dns.name.Name` — domain names, canonical form and ordering
- :class:`repro.dns.message.Message` — full message encode/decode
- :class:`repro.dns.rrset.RRset` — an owner/type/class/TTL grouping of rdata
- :mod:`repro.dns.rdata` — one class per supported RR type
- :mod:`repro.dns.edns` — OPT pseudo-RR and Extended DNS Error codes
"""

from repro.dns.name import Name, NameError_, root
from repro.dns.types import RdataType, RdataClass, Opcode
from repro.dns.rcode import Rcode
from repro.dns.flags import Flag
from repro.dns.rrset import RRset
from repro.dns.message import Message, Question, make_query, make_response

__all__ = [
    "Name",
    "NameError_",
    "root",
    "RdataType",
    "RdataClass",
    "Opcode",
    "Rcode",
    "Flag",
    "RRset",
    "Message",
    "Question",
    "make_query",
    "make_response",
]
