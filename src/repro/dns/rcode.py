"""DNS response codes (RFC 1035, RFC 6895)."""

import enum


class Rcode(enum.IntEnum):
    """Response codes, including the EDNS-extended range."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10
    BADVERS = 16

    @classmethod
    def to_text(cls, value):
        # Memoised: rendering rcodes sits on the per-response metrics
        # path, and the value space is bounded (12 bits).
        try:
            return _RCODE_TEXT[value]
        except KeyError:
            pass
        try:
            text = cls(value).name
        except ValueError:
            text = f"RCODE{int(value)}"
        _RCODE_TEXT[value] = text
        return text


_RCODE_TEXT = {}
