"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``study``  — run both measurement pipelines on a synthetic Internet and
  print the full report (domains, TLDs, resolvers);
- ``scan``   — the domain pipeline only;
- ``survey`` — the resolver survey only;
- ``trace`` — run one probe query with tracing on and print its span tree;
- ``attack`` — run adversarial NSEC3/DNSSEC workloads (CVE-2023-50868
  encloser zones, KeyTrap-style key-tag collisions) against an unguarded
  and a resource-guarded resolver and report per-query cost;
- ``serve`` — put the simulated testbed on real UDP/TCP sockets,
  wire-compatible with ``dig``/zdns (overload-hardened: admission
  control, TCP reaping, graceful drain on SIGTERM);
- ``loadgen`` — replay benign population traffic mixed with adversarial
  streams against a running ``serve`` instance at a configured QPS;
- ``soak`` — the chaos soak harness: benign baseline, attack flood,
  malformed-datagram fuzz, connection churn, recovery, graceful drain —
  exits non-zero on any robustness violation;
- ``timeline`` — the modelled longitudinal view of RFC 9276 adoption;
- ``guidance`` — print the twelve RFC 9276 items (paper Table 1).

The measurement commands accept ``--metrics-out PATH`` (``-`` for stdout)
to dump the telemetry registry collected during the run, and
``--faults SPEC`` to run under injected network faults (chaos mode): the
spec grammar lives in :func:`repro.net.faults.parse_fault_spec`, and
``--faults chaos`` enables the standard weather profile. With faults
active the pipelines automatically harden themselves (per-target
retries, matrix stability checks), so headline numbers should converge
to the clean run's.

``--concurrency N`` runs the campaigns with N query sessions in flight
on the discrete-event simulation kernel (``repro.net.sim``): results and
classifications are identical to the serial run, but the simulated
elapsed time shrinks toward ``1/N`` — the paper's concurrent-scanner
posture. The default of 1 is bit-for-bit the legacy serial behaviour.

``--workers N`` (study/scan/survey) runs the campaign across N
supervised worker processes, each owning a shard of the global unit
list with a crash-safe journaled checkpoint; the merged report is
byte-identical to the single-process run. ``--state-dir DIR`` makes the
fleet state resumable across invocations, and a ``kill:`` token in
``--faults`` injects seeded worker SIGKILLs/hangs to exercise the
supervisor (see :mod:`repro.scanner.supervisor`).

Streaming telemetry (all subcommands): ``--events-out PATH`` writes the
structured event journal as JSONL (flight-recorder dumps included),
``--series-out PATH`` writes metric time-series scraped every
``--scrape-interval`` simulated ms, and ``--progress`` prints live
heartbeat/stall lines to stderr. Reports on stdout stay byte-identical
whether telemetry is on or off. ``trace --trace-out PATH`` additionally
exports the span tree as Chrome-trace/Perfetto JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import __version__, fastpath, obs
from repro.analysis.longitudinal import compliance_timeline, paper_anchor
from repro.core.guidance import GUIDANCE
from repro.core.report import StudyAggregates, render_study_report
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.obs import render_span_tree
from repro.net.faults import parse_fault_spec
from repro.dnssec.costmodel import meter
from repro.resolver.guard import GUARD_PROFILES
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.campaign import CampaignError
from repro.scanner.engine import ScanEngine
from repro.scanner.nsec3_scan import domain_rng, scan_domain, scan_tlds
from repro.scanner.resolver_scan import ResolverSurvey, SurveyRetryPolicy
from repro.testbed.internet import build_internet
from repro.zone import build_cache
from repro.scanner.supervisor import deployment_counts
from repro.testbed.population import (
    Population,
    generate_population,
    generate_tlds,
    inject_tail_domains,
    scaled_config,
)
from repro.testbed.resolvers import deploy_resolvers
from repro.testbed.rfc9276_wild import build_probe_zones


def _streamed(args):
    """The constant-memory pipeline is on unless the switch disabled it."""
    return fastpath.enabled("streamed_pipeline")


def _build(args, with_probes):
    # The scaling rule lives in repro.testbed.population.scaled_config:
    # campaign workers must derive the identical population.
    config = scaled_config(args.domains, args.tlds)
    tlds = generate_tlds(config)
    # A --state-dir also hosts the cross-process signed-zone build
    # cache: a second run (or a worker fleet pointed at the same dir)
    # loads its DNSSEC artifacts instead of re-signing the testbed.
    # ``--disable-fastpath build_cache`` makes active() return None,
    # forcing the cold path while the summaries keep reporting.
    state_dir = getattr(args, "state_dir", None)
    if state_dir is not None:
        build_cache.activate(os.path.join(state_dir, "build-cache"))
    started = time.perf_counter()
    if _streamed(args):
        # Streamed default: the population is an index-addressed stream
        # (no global list) and SLD zones materialise lazily on first
        # authoritative query, bounded by an LRU — identical wire
        # behaviour to the eager build.
        domains = Population(config, tlds=tlds)
        inet = build_internet(domains, tlds, seed=args.seed, lazy_domains=True)
    else:
        domains = inject_tail_domains(generate_population(config, tlds=tlds))
        inet = build_internet(domains, tlds, seed=args.seed)
    # Claim the tracer clock for this run's kernel: later Network
    # constructions (none today, but nothing stops a plugin) can no
    # longer silently rebind it.
    inet.network.kernel.bind_obs()
    probes = build_probe_zones(inet) if with_probes else None
    print(
        f"[testbed] {len(domains)} domains, {len(tlds)} TLDs "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    return inet, probes, domains, tlds


def _metrics_requested(args):
    return getattr(args, "metrics_out", None) is not None


def _telemetry_requested(args):
    """Any collection at all: metrics snapshot, event journal, series,
    or the live console — they all need the obs registry switched on."""
    return (
        _metrics_requested(args)
        or getattr(args, "events_out", None) is not None
        or getattr(args, "series_out", None) is not None
        or getattr(args, "progress", False)
    )


def _start_telemetry(args, inet, label):
    """Attach the streaming telemetry (journal, scraper, console) for one
    run; returns the LiveTelemetry handle (or None when nothing streams).

    Build this *after* the testbed so construction noise stays out of the
    journal, and *before* the campaign so heartbeats cover it.
    """
    if not (
        getattr(args, "events_out", None) is not None
        or getattr(args, "series_out", None) is not None
        or getattr(args, "progress", False)
    ):
        return None
    from repro.obs.live import LiveTelemetry

    return LiveTelemetry(
        inet.network.kernel,
        events_out=getattr(args, "events_out", None),
        series_out=getattr(args, "series_out", None),
        progress=getattr(args, "progress", False),
        scrape_interval_ms=getattr(args, "scrape_interval", 500.0),
        seed=getattr(args, "seed", 0),
        label=label,
    )


def _finish_telemetry(live):
    """Final scrape, file writes, console summary (stderr only)."""
    if live is not None:
        live.finish()


def _chaos_requested(args):
    return bool(getattr(args, "faults", None))


def _apply_faults(args, inet):
    """Install the ``--faults`` plan once the testbed is built (so zone
    signing and deployment stay clean — the weather hits the measurement,
    not the infrastructure)."""
    if not _chaos_requested(args):
        return
    plan = parse_fault_spec(args.faults, seed=args.seed)
    inet.network.set_faults(plan)
    kinds = ", ".join(type(m).__name__ for m in plan.models) or "none"
    print(f"[chaos] fault plan active ({kinds})", file=sys.stderr)


def _dump_metrics(args, inet=None):
    """Write the telemetry registry to ``--metrics-out`` (``-`` = stdout)."""
    if not _metrics_requested(args):
        return
    if inet is not None:
        obs.registry.gauge(
            "repro_sim_clock_ms",
            "Simulated clock at the time the metrics snapshot was taken.",
        ).set(inet.network.clock_ms)
    if args.metrics_format == "prometheus":
        text = obs.registry.render_prometheus()
    else:
        text = json.dumps(obs.registry.to_json(), indent=2, sort_keys=True) + "\n"
    if args.metrics_out == "-":
        sys.stdout.write(text)
    else:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[obs] metrics written to {args.metrics_out}", file=sys.stderr)


def _make_engine(inet, chaos=False, concurrency=1):
    upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="cli-upstream")
    return ScanEngine(
        inet.network,
        inet.allocator.next_v4(),
        upstream.ip,
        max_qps=14_700,
        # Under injected faults, spend extra attempts per target so the
        # headline numbers converge to the clean run's.
        retries=2 if chaos else 1,
        target_retries=3 if chaos else 0,
        concurrency=concurrency,
        # Spread the in-flight window over a small scanner fleet, like
        # the paper's zdns deployment.
        shards=min(max(1, concurrency), 8),
    )


def _iter_domain_results(engine, domains, seed=1355):
    """Stage 1 + stage 2 as one per-domain stream.

    For each domain: the DNSKEY gate (§4.1 stage 1), then — only for
    DNSSEC-enabled names — the stage-2 NSEC3 probes, yielded as they
    complete. This is the campaign supervisor's unit order, so the
    single-process and fleet runs issue the same per-domain query
    sequences; memory stays O(1) in the population size when the caller
    folds results instead of collecting them.
    """
    for spec in domains:
        name = spec.name
        answer = engine.query(
            name, RdataType.DNSKEY, want_dnssec=True, checking_disabled=True
        )
        if answer.rcode != Rcode.NOERROR:
            continue
        if not any(
            int(rrset.rrtype) == int(RdataType.DNSKEY) for rrset in answer.answer
        ):
            continue
        yield scan_domain(engine, name, domain_rng(seed, name))
    # Settle the in-flight window so the next pipeline stage starts
    # after every session has completed on the simulated clock.
    engine.drain()


def _run_survey(inet, probes, args):
    # The deployment mix is shared with the campaign supervisor's
    # workers (repro.scanner.supervisor.deployment_counts): both paths
    # must deploy the identical resolver population.
    deployment = deploy_resolvers(
        inet, seed=args.seed, **deployment_counts(args.resolvers)
    )
    retry_policy = (
        SurveyRetryPolicy(require_stable=True) if _chaos_requested(args) else None
    )
    concurrency = getattr(args, "concurrency", 1)
    survey = ResolverSurvey(
        inet.network,
        probes,
        inet.allocator.next_v4(),
        retry_policy=retry_policy,
        concurrency=concurrency,
    )
    entries = survey.run(deployment)
    atlas = AtlasCampaign(
        inet.network, probes, retry_policy=retry_policy, concurrency=concurrency
    )
    entries += atlas.run(deployment)
    return entries


def _start_mem_stats(args):
    """Begin tracemalloc tracking when ``--mem-stats`` asked for it.

    Call before the testbed build so construction allocations count
    toward the reported peak.
    """
    if not getattr(args, "mem_stats", False):
        return
    import tracemalloc

    if not tracemalloc.is_tracing():
        tracemalloc.start()


def _peak_rss_bytes():
    """This process's lifetime peak RSS in bytes (ru_maxrss is KiB on
    Linux, bytes on macOS)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def _mem_summary(args):
    """The ``--mem-stats`` fragment of the [sim] line, or ''.

    Also exports ``repro_peak_rss_bytes`` through the metrics registry
    so ``--metrics-out`` snapshots carry the memory ceiling.
    """
    if not getattr(args, "mem_stats", False):
        return ""
    import tracemalloc

    peak_rss = _peak_rss_bytes()
    traced_peak = 0
    if tracemalloc.is_tracing():
        __, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    if obs.enabled:
        obs.registry.gauge(
            "repro_peak_rss_bytes",
            "Lifetime peak resident set size of the measurement process.",
        ).set(peak_rss)
        obs.registry.gauge(
            "repro_tracemalloc_peak_bytes",
            "Peak python-heap bytes traced while --mem-stats was active.",
        ).set(traced_peak)
    return f" peak_rss_bytes={peak_rss} tracemalloc_peak_bytes={traced_peak}"


def _build_summary(inet):
    """Build-cache and lazy-host fragments of the [sim] line, or ''."""
    parts = ""
    cache = build_cache.handle()
    if cache is not None and cache.events:
        parts += f" build_cache={cache.summary()}"
    if inet.lazy_host is not None:
        parts += (
            f" lazy_zones=builds:{inet.lazy_host.builds}"
            f",evictions:{inet.lazy_host.evictions}"
        )
    return parts


def _sim_summary(args, inet):
    """One stderr line about the kernel run (stdout stays diffable)."""
    kernel = inet.network.kernel
    print(
        f"[sim] concurrency={getattr(args, 'concurrency', 1)} "
        f"clock_ms={kernel.now:.0f} events={kernel.events_run}"
        f"{_build_summary(inet)}{_mem_summary(args)}",
        file=sys.stderr,
    )


def _run_supervised_command(args, role):
    """Route a measurement command through the campaign supervisor.

    The merged report on stdout is byte-identical to the inline
    single-process run (clean network or ``kill:`` faults); everything
    fleet-related goes to stderr.
    """
    import tempfile

    from repro.scanner.supervisor import CampaignPlan, run_supervised

    if (
        getattr(args, "events_out", None) is not None
        or getattr(args, "series_out", None) is not None
        or getattr(args, "progress", False)
    ):
        print(
            "[supervisor] streaming telemetry (--events-out/--series-out/"
            "--progress) is per-kernel and not available with --workers; "
            "the supervisor prints its own progress lines",
            file=sys.stderr,
        )
    if args.state_dir is None:
        args.state_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        print(f"[supervisor] state dir {args.state_dir}", file=sys.stderr)
    if _metrics_requested(args):
        obs.enable()
    plan = CampaignPlan.from_args(args, role)
    outcome = run_supervised(plan)
    if role == "study":
        print(
            render_study_report(
                outcome.domain_results,
                outcome.total_domains,
                outcome.tld_results,
                outcome.entries,
            )
        )
    elif role == "scan":
        print(render_study_report(outcome.domain_results, outcome.total_domains))
    else:
        from repro.analysis.stats import resolver_headline_stats

        headline = resolver_headline_stats(
            [e.classification for e in outcome.entries]
        )
        print("validating resolver survey (paper §5.2):")
        for label, paper, measured in headline.rows():
            print(f"  {label:40s} paper={paper:>6}  measured={measured}")
    _dump_metrics(args)
    coverage = outcome.coverage
    if getattr(args, "exit_code_on_partial", False) and not coverage.complete:
        print(
            f"[supervisor] partial coverage "
            f"{coverage.units_merged}/{coverage.units_total}; "
            "exiting 4 (--exit-code-on-partial)",
            file=sys.stderr,
        )
        return 4


def cmd_study(args):
    """Run both pipelines and print the combined study report.

    Both modes of the ``streamed_pipeline`` switch walk the identical
    per-domain query sequence through :func:`_iter_domain_results`; they
    differ only in whether results are folded into
    :class:`StudyAggregates` as they arrive (streamed, the default) or
    collected into lists first (materialised) — the reports are
    byte-identical.
    """
    if getattr(args, "workers", 1) > 1:
        return _run_supervised_command(args, "study")
    if _telemetry_requested(args):
        obs.enable()
    _start_mem_stats(args)
    inet, probes, domains, tlds = _build(args, with_probes=True)
    _apply_faults(args, inet)
    live = _start_telemetry(args, inet, label="study")
    if obs.console is not None:
        obs.console.phase("study:domains")
    engine = _make_engine(
        inet, chaos=_chaos_requested(args), concurrency=args.concurrency
    )
    stream = _iter_domain_results(engine, domains)
    if _streamed(args):
        aggregates = StudyAggregates()
        for result in stream:
            aggregates.update_domain(result)
        for tld_result in scan_tlds(engine, tlds):
            aggregates.update_tld(tld_result)
        if obs.console is not None:
            obs.console.phase("study:survey")
        for entry in _run_survey(inet, probes, args):
            aggregates.update_survey(entry)
        report = aggregates.render(len(domains))
    else:
        results = list(stream)
        tld_results = scan_tlds(engine, tlds)
        if obs.console is not None:
            obs.console.phase("study:survey")
        entries = _run_survey(inet, probes, args)
        report = render_study_report(results, len(domains), tld_results, entries)
    print(report)
    _sim_summary(args, inet)
    _finish_telemetry(live)
    _dump_metrics(args, inet)


def cmd_scan(args):
    """Run the §4.1 domain pipeline and print its report."""
    if getattr(args, "workers", 1) > 1:
        return _run_supervised_command(args, "scan")
    if _telemetry_requested(args):
        obs.enable()
    _start_mem_stats(args)
    inet, __, domains, __tlds = _build(args, with_probes=False)
    _apply_faults(args, inet)
    live = _start_telemetry(args, inet, label="scan")
    engine = _make_engine(
        inet, chaos=_chaos_requested(args), concurrency=args.concurrency
    )
    stream = _iter_domain_results(engine, domains)
    if _streamed(args):
        aggregates = StudyAggregates()
        for result in stream:
            aggregates.update_domain(result)
        report = aggregates.render(len(domains))
    else:
        report = render_study_report(list(stream), len(domains))
    print(report)
    _sim_summary(args, inet)
    _finish_telemetry(live)
    _dump_metrics(args, inet)


def cmd_survey(args):
    """Run the §4.2 resolver survey and print the headline numbers."""
    if getattr(args, "workers", 1) > 1:
        return _run_supervised_command(args, "survey")
    if _telemetry_requested(args):
        obs.enable()
    _start_mem_stats(args)
    args.domains = min(args.domains, 20)
    inet, probes, __, __tlds = _build(args, with_probes=True)
    _apply_faults(args, inet)
    live = _start_telemetry(args, inet, label="survey")
    from repro.analysis.stats import ResolverHeadlineAccumulator

    accumulator = ResolverHeadlineAccumulator()
    for entry in _run_survey(inet, probes, args):
        accumulator.update(entry.classification)
    headline = accumulator.headline()
    print("validating resolver survey (paper §5.2):")
    for label, paper, measured in headline.rows():
        print(f"  {label:40s} paper={paper:>6}  measured={measured}")
    _sim_summary(args, inet)
    _finish_telemetry(live)
    _dump_metrics(args, inet)


def cmd_trace(args):
    """Trace one probe query end-to-end and print its span tree.

    The qname gets a unique cache-busting label prepended (as the real
    survey does), so a probe-zone name like ``it-150.rfc9276-in-the-wild
    .com`` produces the full NXDOMAIN path: network hops, cache misses,
    NSEC3 closest-encloser hashing, and signature verification.
    """
    obs.enable(tracing_spans=True)
    inet, __probes, __, __tlds = _build(args, with_probes=True)
    _apply_faults(args, inet)
    resolver = inet.make_resolver(
        VENDOR_POLICIES[args.policy], name="trace-resolver"
    )
    obs.reset()  # drop build-time samples; keep only the traced query
    live = _start_telemetry(args, inet, label="trace")
    client = StubClient(inet.network, inet.allocator.next_v4())
    target = f"{args.label}.{args.qname}" if args.label else args.qname
    with obs.span("probe.query", qname=target, policy=args.policy) as root_span:
        answer = client.ask(resolver.ip, target, RdataType.A)
        root_span.set(rcode=Rcode.to_text(answer.rcode))
    print(f"qname  : {target}")
    print(f"policy : {args.policy} (resolver {resolver.ip})")
    print(
        f"answer : rcode={Rcode.to_text(answer.rcode)} ad={answer.ad} "
        f"ede={sorted(answer.ede_codes)}"
    )
    print()
    print(render_span_tree(obs.tracer.last_root()))
    if getattr(args, "trace_out", None):
        from repro.obs.export import write_chrome_trace

        events = obs.journal.tail() if obs.journal is not None else ()
        write_chrome_trace(
            args.trace_out, roots=list(obs.tracer.roots), events=events
        )
        print(f"[obs] chrome trace written to {args.trace_out}", file=sys.stderr)
    _finish_telemetry(live)
    _dump_metrics(args, inet)


def cmd_attack(args):
    """Run the adversarial workloads against guarded and unguarded resolvers.

    For every attack zone, fire ``--queries`` unique (cache-busting)
    probes at a legacy-policy resolver without guards and at one running
    the ``--guard`` profile, and report the worst per-query simulated
    cost each saw. The guarded resolver is expected to SERVFAIL (with an
    Extended DNS Error) once a budget trips, capping its cost at the
    ceiling plus at most one metered operation; the unguarded one burns
    the full amplification — the CI smoke job asserts exactly that split
    from the exported metrics.
    """
    from repro.testbed.adversary import build_attack_zones

    if _telemetry_requested(args):
        obs.enable()
    inet, __, __, __tlds = _build(args, with_probes=False)
    _apply_faults(args, inet)
    live = _start_telemetry(args, inet, label="attack")
    attack = build_attack_zones(inet, seed=args.seed + 50_861)
    profile = GUARD_PROFILES[args.guard]
    resolvers = (
        (
            "unguarded",
            inet.make_resolver(VENDOR_POLICIES["legacy"], name="attack-unguarded"),
        ),
        (
            args.guard,
            inet.make_resolver(
                VENDOR_POLICIES["legacy"], name="attack-guarded", guard=profile
            ),
        ),
    )
    print(f"adversarial workloads ({args.queries} unique queries per zone):")
    print(
        f"  {'zone':18s} {'profile':12s} {'rcodes':18s} "
        f"{'max sha1':>9s} {'max verify':>10s} {'servfail':>8s}"
    )
    for kind in attack.attack_kinds():
        for label, resolver in resolvers:
            max_sha1 = max_verify = servfails = 0
            rcodes = set()
            for index in range(args.queries):
                qname = attack.attack_name(kind, unique=f"q{index}")
                before = meter.snapshot()
                verdict = resolver.resolve_and_validate(qname, RdataType.A)
                delta = meter.snapshot() - before
                max_sha1 = max(max_sha1, delta.sha1_compressions)
                max_verify = max(max_verify, delta.signature_verifications)
                rcodes.add(Rcode.to_text(verdict.rcode))
                if verdict.rcode == Rcode.SERVFAIL:
                    servfails += 1
            print(
                f"  {kind:18s} {label:12s} {'/'.join(sorted(rcodes)):18s} "
                f"{max_sha1:9d} {max_verify:10d} {servfails:7d}/{args.queries}"
            )
            if obs.enabled:
                cost_gauge = obs.registry.gauge(
                    "repro_attack_cost_max",
                    "Worst per-query simulated cost observed per attack "
                    "zone and resolver profile.",
                    labelnames=("profile", "zone", "dimension"),
                )
                cost_gauge.labels(
                    profile=label, zone=kind, dimension="sha1_compressions"
                ).set(max_sha1)
                cost_gauge.labels(
                    profile=label, zone=kind, dimension="verifications"
                ).set(max_verify)
    guarded = resolvers[1][1]
    if guarded.guard_events:
        print(
            "guard events: "
            + ", ".join(f"{k}={v}" for k, v in sorted(guarded.guard_events.items()))
        )
    if obs.enabled:
        budget_gauge = obs.registry.gauge(
            "repro_attack_guard_budget",
            "Configured ceilings of the guard profile under test.",
            labelnames=("profile", "dimension"),
        )
        for dimension, value in (
            ("sha1_compressions", profile.max_hash_cost),
            ("verifications", profile.max_signature_verifications),
            ("upstream_queries", profile.max_upstream_queries),
        ):
            if value is not None:
                budget_gauge.labels(profile=args.guard, dimension=dimension).set(value)
    _sim_summary(args, inet)
    _finish_telemetry(live)
    _dump_metrics(args, inet)


def cmd_serve(args):
    """Put the simulated testbed on real sockets and serve until signal.

    Binds the guarded validating resolver (and, with ``--auth-port``, the
    probe-zone authoritative server) to UDP+TCP on the requested address,
    wire-compatible with ``dig``/``kdig``/zdns. SIGTERM/SIGINT (or
    ``--duration``) trigger a graceful drain — listeners close, every
    queued query is answered, and the final counter snapshot lands on
    stdout as JSON.
    """
    import asyncio

    from repro.service.engine import ServiceEngine
    from repro.service.frontend import Binding, DnsService
    from repro.service.world import build_service_world

    if _telemetry_requested(args):
        obs.enable()
    guard = None if args.guard == "none" else args.guard
    started = time.perf_counter()
    world = build_service_world(
        domains=args.domains,
        tlds=args.tlds,
        seed=args.seed,
        guard=guard,
        policy=args.policy,
        with_attack=not args.no_attack,
    )
    print(
        f"[serve] testbed ready: {args.domains} domains, {args.tlds} TLDs, "
        f"guard={args.guard}, policy={args.policy} "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    bindings = [
        Binding(
            "resolver",
            world.resolver,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
        )
    ]
    if args.auth_port is not None:
        bindings.append(
            Binding(
                "auth",
                world.auth_server,
                host=args.host,
                port=args.auth_port,
                max_pending=args.max_pending,
            )
        )
    engine = ServiceEngine(
        capacity=args.capacity, pending_timeout_s=args.pending_timeout
    )
    service = DnsService(
        bindings,
        engine=engine,
        tcp_max_connections=args.tcp_max_connections,
        tcp_idle_timeout_s=args.tcp_idle_timeout,
    )

    async def _serve():
        await service.start()
        for binding in service.bindings:
            print(
                f"[serve] {binding.name} listening on "
                f"{args.host}:{binding.bound_port} (udp+tcp)",
                file=sys.stderr,
            )
        print(
            f"[serve] try: dig @{args.host} -p "
            f"{service.bindings[0].bound_port} "
            "www.valid.rfc9276-in-the-wild.com A +dnssec",
            file=sys.stderr,
        )
        if args.duration:
            asyncio.get_running_loop().call_later(args.duration, service.shutdown)
        return await service.serve_until_signal()

    snapshot = asyncio.run(_serve())
    print("[serve] drained; final snapshot on stdout", file=sys.stderr)
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    _dump_metrics(args)


def cmd_loadgen(args):
    """Replay benign/attack traffic against a live service instance."""
    from repro.service.loadgen import benign_pool, run_loadgen

    report = run_loadgen(
        host=args.host,
        port=args.port,
        qps=args.qps,
        duration_s=args.duration,
        attack_ratio=args.attack_ratio,
        benign_names=benign_pool(args.domains, args.tlds),
        unique_ratio=args.unique_ratio,
        timeout_s=args.timeout,
        seed=args.seed,
    )
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[loadgen] report written to {args.json_out}", file=sys.stderr)


def cmd_soak(args):
    """Run the chaos soak against a fresh service; exit 1 on violations."""
    from repro.service.soak import SoakConfig, run_soak

    config = SoakConfig(
        domains=args.domains,
        tlds=args.tlds,
        seed=args.seed,
        phase_s=args.phase_seconds,
        benign_qps=args.benign_qps,
        attack_qps=args.attack_qps,
        rss_growth_limit_mb=args.rss_limit_mb,
        benign_p99_limit_ms=args.p99_limit_ms,
    )
    report = run_soak(config)
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[soak] report written to {args.json_out}", file=sys.stderr)
    return 0 if report.passed else 1


def cmd_timeline(args):
    """Print the modelled RFC 9276 adoption timeline."""
    states = compliance_timeline()
    print("modelled RFC 9276 adoption timeline (paper §6 future work):")
    print(f"{'year':>7s} {'0-iter share':>13s} {'NSEC3 share':>12s} "
          f"{'vendor limit':>13s} {'limit adoption':>15s}")
    for state in states:
        limit = state.vendor_limit if state.vendor_limit is not None else "-"
        print(
            f"{state.year:7.1f} {state.zero_iteration_share:12.1%} "
            f"{state.nsec3_share:11.1%} {str(limit):>13s} "
            f"{state.resolver_limit_adoption:14.1%}"
        )
        for event in state.events:
            print(f"        ← {event.actor}: {event.description}")
    anchor = paper_anchor(states)
    print(
        f"\nat the paper's measurement point ({anchor.year}): "
        f"{1 - anchor.zero_iteration_share:.1%} non-compliant "
        f"(paper measured 87.8 %)"
    )


def cmd_guidance(args):
    """Print the twelve guidance items (paper Table 1)."""
    print("RFC 9276 guidance (paper Table 1):")
    for item in GUIDANCE:
        print(f"  Item {item.number:2d} [{item.keyword.value:15s}] "
              f"({item.audience.value}) {item.summary}")


def _telemetry_parent():
    """Shared telemetry/fault flags, identical across every subcommand.

    One parent parser instead of the per-command copies that used to
    drift: adding a flag here gives it to study/scan/survey/trace/attack
    at once, with one help string.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="dump the telemetry registry here after the run ('-' = stdout)",
    )
    group.add_argument(
        "--metrics-format",
        choices=("json", "prometheus"),
        default="json",
        help="snapshot format for --metrics-out (default: json)",
    )
    group.add_argument(
        "--events-out",
        metavar="PATH",
        help="stream the structured event journal here as JSONL "
        "('-' = stderr); guard trips and stalls dump the flight recorder",
    )
    group.add_argument(
        "--series-out",
        metavar="PATH",
        help="write scraped metric time-series here ('.csv' = CSV, else JSON)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="print live heartbeat lines to stderr (sim vs wall clock, "
        "done/in-flight/quarantined, ETA) with a stall detector",
    )
    group.add_argument(
        "--scrape-interval",
        type=float,
        default=500.0,
        metavar="MS",
        help="time-series scrape interval in simulated ms (default: 500)",
    )
    group.add_argument(
        "--mem-stats",
        action="store_true",
        help="report peak RSS and tracemalloc peak in the [sim] summary "
        "and export repro_peak_rss_bytes via the metrics registry",
    )
    group.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject network faults: a preset ('chaos') or a spec like "
        "'burst:0.05:0.35:0.5,jitter:20,corrupt:0.1' "
        "(see repro.net.faults.parse_fault_spec)",
    )
    group.add_argument(
        "--disable-fastpath",
        metavar="LIST",
        help="disable cost-transparent fast paths for equivalence runs: "
        f"a comma list of {', '.join(fastpath.KNOWN_SWITCHES)}, or 'all' "
        "(env: REPRO_FASTPATH_DISABLE)",
    )
    return parent


def _fleet_parent():
    """Multi-process campaign flags (study/scan/survey only)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("multi-process campaign")
    group.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run the campaign across N supervised worker processes with "
        "crash-safe per-shard checkpoints (1 = in-process, the default); "
        "the merged report is byte-identical to the single-process run",
    )
    group.add_argument(
        "--state-dir",
        metavar="DIR",
        help="directory for shard checkpoints/heartbeats and the shared "
        "signed-zone build cache (default: a fresh temp dir; pass the "
        "same DIR again to resume a killed campaign or reuse its cache)",
    )
    group.add_argument(
        "--discard-checkpoint",
        action="store_true",
        help="archive unreadable/foreign checkpoint files (*.invalid) and "
        "start fresh instead of failing with CampaignError",
    )
    group.add_argument(
        "--stall-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="wall-clock seconds without worker progress before the "
        "supervisor kills and restarts it (default: 60)",
    )
    group.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        metavar="N",
        help="restart budget per shard before it is quarantined as lame "
        "and the report degrades to partial coverage (default: 3)",
    )
    group.add_argument(
        "--exit-code-on-partial",
        action="store_true",
        help="exit 4 when the merged report has partial coverage (lame or "
        "operator-stopped shards) instead of the default warn-and-exit-0",
    )
    return parent


def _campaign_parent(domains, tlds, resolvers=None, concurrency=False):
    """Shared testbed-size flags, with per-command-family defaults."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--domains", type=int, default=domains)
    parent.add_argument("--tlds", type=int, default=tlds)
    if resolvers is not None:
        parent.add_argument("--resolvers", type=int, default=resolvers)
    parent.add_argument("--seed", type=int, default=7)
    if concurrency:
        parent.add_argument(
            "--concurrency",
            type=int,
            default=1,
            help="in-flight query sessions on the simulated clock "
            "(1 = serial, bit-for-bit the legacy behaviour; higher values "
            "overlap sessions like the paper's ~14.7K req/s scanner)",
        )
    return parent


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Zeros Are Heroes: NSEC3 Parameter "
        "Settings in the Wild' (IMC 2024)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry = _telemetry_parent()
    fleet = _fleet_parent()
    pipeline = _campaign_parent(400, 120, resolvers=40, concurrency=True)
    small = _campaign_parent(60, 40)

    for name, handler, help_text in (
        ("study", cmd_study, "full study: domains + TLDs + resolvers"),
        ("scan", cmd_scan, "domain pipeline only (§4.1/§5.1)"),
        ("survey", cmd_survey, "resolver survey only (§4.2/§5.2)"),
    ):
        command = sub.add_parser(
            name, help=help_text, parents=[pipeline, fleet, telemetry]
        )
        command.set_defaults(handler=handler)

    trace = sub.add_parser(
        "trace",
        help="trace one probe query and print its span tree",
        parents=[small, telemetry],
    )
    trace.add_argument(
        "qname",
        nargs="?",
        default="it-150.rfc9276-in-the-wild.com",
        help="name to query (default: the 150-iteration probe zone)",
    )
    trace.add_argument(
        "--policy",
        choices=sorted(VENDOR_POLICIES),
        default="legacy",
        help="validating-resolver policy to trace through (default: legacy)",
    )
    trace.add_argument(
        "--label",
        default="trace1",
        help="unique cache-busting label prepended to qname ('' to disable)",
    )
    trace.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the span tree (plus journal events) as Chrome-trace/"
        "Perfetto JSON, loadable in ui.perfetto.dev",
    )
    trace.set_defaults(handler=cmd_trace)

    attack = sub.add_parser(
        "attack",
        help="adversarial NSEC3/DNSSEC workloads vs a resource-guarded resolver",
        parents=[small, telemetry],
    )
    attack.add_argument(
        "--queries",
        type=int,
        default=6,
        help="unique (cache-busting) probes per attack zone (default: 6)",
    )
    attack.add_argument(
        "--guard",
        choices=sorted(GUARD_PROFILES),
        default="guarded",
        help="guard profile for the protected resolver (default: guarded)",
    )
    attack.set_defaults(handler=cmd_attack)

    service_size = _campaign_parent(40, 12)

    serve = sub.add_parser(
        "serve",
        help="serve the testbed on real UDP/TCP sockets (dig-compatible)",
        parents=[service_size, telemetry],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=5300,
        help="resolver UDP+TCP port (0 = ephemeral; default: 5300)",
    )
    serve.add_argument(
        "--auth-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also bind the probe-zone authoritative server here",
    )
    serve.add_argument(
        "--guard",
        choices=sorted(GUARD_PROFILES) + ["none"],
        default="guarded",
        help="resolver guard profile ('none' = unguarded; default: guarded)",
    )
    serve.add_argument(
        "--policy",
        choices=sorted(VENDOR_POLICIES),
        default="legacy",
        help="validating-resolver vendor policy (default: legacy)",
    )
    serve.add_argument(
        "--no-attack",
        action="store_true",
        help="skip building the adversarial NSEC3/KeyTrap lab zones",
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="global pending-query admission bound (default: 64)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=128,
        help="per-socket pending-query bound (default: 128)",
    )
    serve.add_argument(
        "--pending-timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="queued queries older than this are shed (default: 5)",
    )
    serve.add_argument(
        "--tcp-max-connections",
        type=int,
        default=64,
        help="global open TCP connection cap (default: 64)",
    )
    serve.add_argument(
        "--tcp-idle-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="idle/slow-loris TCP reap threshold (default: 10)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="S",
        help="drain and exit after S seconds (0 = serve until signal)",
    )
    serve.set_defaults(handler=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay benign/attack traffic against a running 'repro serve'",
        parents=[service_size],
    )
    loadgen.add_argument("--host", default="127.0.0.1", help="target address")
    loadgen.add_argument(
        "--port", type=int, default=5300, help="target port (default: 5300)"
    )
    loadgen.add_argument(
        "--qps", type=float, default=200.0, help="offered load (default: 200)"
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="S",
        help="send window in seconds (default: 5)",
    )
    loadgen.add_argument(
        "--attack-ratio",
        type=float,
        default=0.0,
        help="fraction of queries drawn from the CVE-2023-50868/KeyTrap "
        "streams (default: 0 = all benign)",
    )
    loadgen.add_argument(
        "--unique-ratio",
        type=float,
        default=0.3,
        help="fraction of benign queries with cache-busting labels "
        "(default: 0.3)",
    )
    loadgen.add_argument(
        "--timeout",
        type=float,
        default=3.0,
        metavar="S",
        help="per-query reply timeout (default: 3)",
    )
    loadgen.add_argument(
        "--json-out", metavar="PATH", help="also write the report as JSON"
    )
    loadgen.set_defaults(handler=cmd_loadgen)

    soak = sub.add_parser(
        "soak",
        help="chaos soak: benign → attack → fuzz → churn → recovery → drain",
        parents=[service_size],
    )
    soak.add_argument(
        "--phase-seconds",
        type=float,
        default=5.0,
        metavar="S",
        help="wall seconds per soak phase (default: 5)",
    )
    soak.add_argument(
        "--benign-qps", type=float, default=120.0, help="benign load (default: 120)"
    )
    soak.add_argument(
        "--attack-qps",
        type=float,
        default=250.0,
        help="mixed load during the attack phase (default: 250)",
    )
    soak.add_argument(
        "--rss-limit-mb",
        type=float,
        default=400.0,
        help="RSS growth ceiling over the whole soak (default: 400)",
    )
    soak.add_argument(
        "--p99-limit-ms",
        type=float,
        default=5000.0,
        help="benign p99 ceiling during the attack phase (default: 5000)",
    )
    soak.add_argument(
        "--json-out", metavar="PATH", help="also write the report as JSON"
    )
    soak.set_defaults(handler=cmd_soak)

    timeline = sub.add_parser("timeline", help="modelled adoption timeline")
    timeline.set_defaults(handler=cmd_timeline)
    guidance = sub.add_parser("guidance", help="print the twelve items")
    guidance.set_defaults(handler=cmd_guidance)

    args = parser.parse_args(argv)
    if getattr(args, "disable_fastpath", None):
        try:
            fastpath.disable(args.disable_fastpath)
        except ValueError as exc:
            parser.error(str(exc))
    try:
        code = args.handler(args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    except CampaignError as exc:
        # Operator-facing campaign failures (bad checkpoints, foreign
        # state dirs) get one line, not a traceback.
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    return int(code) if code else 0


if __name__ == "__main__":
    sys.exit(main())
