"""Kill switches for the cost-model-preserving fast paths.

The hot paths of the study are memoised at three layers — the NSEC3
digest memo (:mod:`repro.dnssec.nsec3hash`), the RRSIG-verification memo
(:mod:`repro.dnssec.validator`), and the authoritative packed-answer
cache (:mod:`repro.server.authoritative`) — plus the RSA-CRT signing
path (:mod:`repro.crypto.rsa`). Every one of them is behaviourally
transparent: a hit charges the DNSSEC cost model exactly as the real
computation would, so reports and guard decisions are byte-identical
with the fast paths on or off. CI asserts exactly that, which requires
turning them off; this module is the single switchboard.

Switches are named, default-on, and disabled either programmatically
(:func:`disable` / :func:`enabled_only_during_tests` helpers) or through
the environment::

    REPRO_FASTPATH_DISABLE=answer_cache,validator_memo  repro study ...
    REPRO_FASTPATH_DISABLE=all                          repro study ...

The CLI exposes the same knob as ``--disable-fastpath``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: Every switch this module knows about. ``streamed_pipeline`` selects
#: the constant-memory study path (streamed population, lazily
#: materialised SLD zones, incremental report aggregates); disabling it
#: restores the materialise-everything path, whose report is
#: byte-identical — that equivalence is what CI diffs.
#: ``build_cache`` covers the cross-process signed-zone build cache plus
#: the batched signing fast paths it rides with (chain-batched NSEC3
#: hashing, hoisted per-zone RSA signing setup); disabling it forces
#: every process to cold-rebuild and re-sign the full testbed.
KNOWN_SWITCHES = (
    "validator_memo",
    "answer_cache",
    "nsec3_memo",
    "rsa_crt",
    "streamed_pipeline",
    "build_cache",
)

_ENV_VAR = "REPRO_FASTPATH_DISABLE"

_disabled = set()


def _parse_spec(spec):
    names = set()
    for token in (spec or "").split(","):
        token = token.strip()
        if not token:
            continue
        if token == "all":
            names.update(KNOWN_SWITCHES)
            continue
        if token not in KNOWN_SWITCHES:
            raise ValueError(
                f"unknown fast-path switch {token!r} "
                f"(known: {', '.join(KNOWN_SWITCHES)}, or 'all')"
            )
        names.add(token)
    return names


def enabled(name):
    """True when the fast path *name* should be used."""
    return name not in _disabled


def disable(spec):
    """Disable switches named in *spec* (comma list, or ``all``)."""
    _disabled.update(_parse_spec(spec))


def enable(name):
    """Re-enable a single switch."""
    _disabled.discard(name)


def disabled_names():
    """The currently disabled switches, sorted — e.g. for shipping the
    parent's programmatic state across a spawn boundary."""
    return tuple(sorted(_disabled))


def reset():
    """Restore the environment-configured state (used by tests)."""
    _disabled.clear()
    _disabled.update(_parse_spec(os.environ.get(_ENV_VAR, "")))


@contextmanager
def disabled(spec):
    """Context manager disabling *spec* and restoring the prior state."""
    saved = set(_disabled)
    disable(spec)
    try:
        yield
    finally:
        _disabled.clear()
        _disabled.update(saved)


reset()
