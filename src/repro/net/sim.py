"""Discrete-event simulation kernel: one virtual clock, many in-flight queries.

The fabric used to be strictly serial: every exchange advanced
``Network.clock_ms`` inline, so a campaign's simulated duration was the sum
of every path latency. This module owns the clock instead and turns delays
into *events*:

- :class:`SimKernel` holds an event heap ``(at_ms, seq, fn)`` and the
  :class:`SimClock`. Delivery and transport code are written as
  *delay-yielding generators* — every ``yield delay_ms`` is a point where
  simulated time passes. :meth:`SimKernel.execute` drives such a generator
  either by scheduling each delay as a timer event on the heap (the serial
  top level: retries, backoff waits, path latencies all become kernel
  events) or inline (nested resolution inside a server's
  ``handle_datagram``, and anything running inside a session frame).

- :class:`SimClock` layers *session frames* over the committed clock. A
  frame gives one in-flight query session its own local view of time:
  code inside the frame reads and advances the frame clock through the
  same ``Network.clock_ms`` property it always used, while the committed
  clock stays put. When the frame pops, the elapsed frame time is the
  session's simulated cost.

- :class:`CampaignExecutor` is the concurrency window. Sessions are
  *executed* synchronously in submission order (so RNG draw order — and
  therefore every answer — is byte-identical at any window size), but each
  runs in its own frame and its *completion* is scheduled on the kernel
  heap at ``start + elapsed``. With window ``N``, admission of session
  ``N+1`` waits for the earliest completion event, so the committed clock
  advances like ``N`` overlapping scanners: the makespan approaches
  ``sum(session costs) / N`` instead of the serial sum. That is the
  paper's measurement posture — ~14.7K requests/s of concurrent traffic —
  on a clock that stays deterministic per seed.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager


class SimClock:
    """Committed virtual time plus a stack of session-frame clocks.

    ``read``/``write``/``advance`` operate on the innermost frame when one
    is active, else on the committed clock — so existing code that does
    ``network.clock_ms += delay`` transparently charges the session it is
    running inside.
    """

    __slots__ = ("now", "_frames", "on_commit")

    def __init__(self, now=0.0):
        #: Committed simulated time in milliseconds.
        self.now = float(now)
        self._frames = []
        #: Optional hook fired *before* the committed clock advances
        #: (``on_commit(new_now)``) — the kernel installs it while
        #: periodic tasks are registered so scrape/heartbeat ticks fire
        #: at their due times even across direct clock writes (pacing,
        #: requeue delays). ``None`` keeps the write path one branch.
        self.on_commit = None

    @property
    def in_frame(self):
        """True while a session frame is active."""
        return bool(self._frames)

    def read(self):
        """Current time as seen by running code (frame-local if framed)."""
        return self._frames[-1] if self._frames else self.now

    def write(self, value):
        """Set the current time (frame-local if framed)."""
        if self._frames:
            self._frames[-1] = float(value)
        else:
            value = float(value)
            if self.on_commit is not None and value > self.now:
                self.on_commit(value)
            self.now = value

    def advance(self, delta):
        self.write(self.read() + delta)

    def push_frame(self, start_ms=None):
        """Open a session frame starting at *start_ms* (default: now)."""
        self._frames.append(self.read() if start_ms is None else float(start_ms))

    def pop_frame(self):
        """Close the innermost frame; returns its final local time."""
        return self._frames.pop()


class PeriodicTask:
    """One recurring kernel task: fires every ``interval_ms`` of committed
    simulated time, at its due times, in registration order among equals.

    The callback receives the *due* time (not the post-jump clock), so a
    scraper sampling every 500 ms records samples at 500/1000/1500 even
    when the clock jumps 2 s at once (requeue delays, QPS pacing).
    Callbacks observe only — they must not schedule kernel events,
    advance the clock, or draw from any RNG, so a run with telemetry
    attached stays byte-identical to one without.
    """

    __slots__ = ("next_due", "interval_ms", "fn", "name", "cancelled")

    def __init__(self, next_due, interval_ms, fn, name):
        self.next_due = next_due
        self.interval_ms = interval_ms
        self.fn = fn
        self.name = name
        self.cancelled = False


class SimKernel:
    """The event heap and the single owned virtual clock of one run."""

    def __init__(self, start_ms=0.0):
        self.clock = SimClock(start_ms)
        self._heap = []
        self._seq = 0
        #: Depth of generator steps currently being dispatched from the
        #: heap; nested sends issued during a step run inline so the
        #: serial ordering (and RNG draw order) is exactly the legacy one.
        self._dispatching = 0
        self.events_scheduled = 0
        self.events_run = 0
        #: First-class periodic tasks (scrapers, heartbeats); they live
        #: outside the heap so ``run_until_idle`` still terminates.
        self._periodic = []
        self.periodic_runs = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self):
        """Committed kernel time (ignores any active session frame)."""
        return self.clock.now

    # -- event heap ---------------------------------------------------------

    def schedule(self, delay_ms, fn):
        """Schedule *fn* to run *delay_ms* after the current clock reading."""
        return self.schedule_at(self.clock.read() + delay_ms, fn)

    def schedule_at(self, at_ms, fn):
        """Schedule *fn* at absolute time *at_ms*; FIFO among equal times."""
        self._seq += 1
        heapq.heappush(self._heap, (float(at_ms), self._seq, fn))
        self.events_scheduled += 1
        return (float(at_ms), self._seq)

    def pending(self):
        """Number of events waiting on the heap."""
        return len(self._heap)

    def run_next(self):
        """Pop and run the earliest event, committing the clock to its time.

        Must be called from the top level (no active frame): the heap is
        the committed-time schedule, not any session's local one.
        """
        at_ms, __, fn = heapq.heappop(self._heap)
        if at_ms > self.clock.now:
            if self._periodic:
                self._fire_periodic(at_ms)
            self.clock.now = at_ms
        self.events_run += 1
        fn()
        return at_ms

    def run_until_idle(self):
        """Drain the heap; returns the number of events run."""
        count = 0
        while self._heap:
            self.run_next()
            count += 1
        return count

    # -- generator drivers ---------------------------------------------------

    def execute(self, gen):
        """Run a delay-yielding generator to completion; returns its value.

        Inside a session frame, or while already dispatching a heap event
        (nested resolution), the generator runs inline with each yielded
        delay charged to the active clock. At the top level every yielded
        delay becomes a timer event on the heap — the schedule/complete
        halves of the exchange. Both drivers apply delays at the same
        points, so clock arithmetic and RNG draw order are identical.
        """
        if self.clock.in_frame or self._dispatching:
            return self._run_inline(gen)
        return self._run_scheduled(gen)

    def _run_inline(self, gen):
        try:
            delay = next(gen)
            while True:
                if delay:
                    self.clock.advance(delay)
                delay = gen.send(None)
        except StopIteration as stop:
            return stop.value

    def _run_scheduled(self, gen):
        outcome = []

        def step():
            self._dispatching += 1
            try:
                delay = next(gen)
            except StopIteration as stop:
                outcome.append(("return", stop.value))
                return
            except BaseException as exc:  # surfaced to the caller below
                outcome.append(("raise", exc))
                return
            finally:
                self._dispatching -= 1
            self.schedule(delay, step)

        step()
        while not outcome:
            self.run_next()
        kind, value = outcome[0]
        if kind == "raise":
            raise value
        return value

    @contextmanager
    def frame(self, start_ms=None):
        """A session frame: code inside sees (and advances) its own clock."""
        self.clock.push_frame(start_ms)
        try:
            yield self.clock
        finally:
            self.clock.pop_frame()

    # -- periodic tasks ------------------------------------------------------

    def every(self, interval_ms, fn, name="periodic", start_delay_ms=None):
        """Register ``fn(due_ms)`` to fire every *interval_ms* of committed
        simulated time; returns a :class:`PeriodicTask` handle for
        :meth:`cancel`.

        Tasks fire whenever the committed clock crosses their due time —
        between heap events and across direct top-level clock writes —
        at the due time itself, catching up one firing per elapsed
        interval after a large jump. Callbacks are observers only (see
        :class:`PeriodicTask`).
        """
        interval_ms = float(interval_ms)
        if interval_ms <= 0:
            raise ValueError("periodic interval must be positive")
        first = (
            self.clock.now + interval_ms
            if start_delay_ms is None
            else self.clock.now + float(start_delay_ms)
        )
        task = PeriodicTask(first, interval_ms, fn, name)
        self._periodic.append(task)
        self.clock.on_commit = self._fire_periodic
        return task

    def cancel(self, task):
        """Deregister a periodic task (idempotent)."""
        task.cancelled = True
        self._periodic = [t for t in self._periodic if not t.cancelled]
        if not self._periodic:
            self.clock.on_commit = None

    def _fire_periodic(self, to_ms):
        """Fire every task due at or before *to_ms*, in due-time order."""
        while True:
            due = None
            for task in self._periodic:
                if task.next_due <= to_ms and (
                    due is None or task.next_due < due.next_due
                ):
                    due = task
            if due is None:
                return
            at = due.next_due
            due.next_due = at + due.interval_ms
            self.periodic_runs += 1
            due.fn(at)

    # -- observability -------------------------------------------------------

    def bind_obs(self, exclusive=True):
        """Point the tracer clock at this kernel.

        ``exclusive=True`` *claims* the run: later implicit binds (every
        ``Network.__init__``) no longer steal the clock. Implicit binds
        pass ``exclusive=False`` and keep the legacy last-wins behaviour
        among themselves until something claims.
        """
        from repro import obs

        return obs.bind_clock(self.clock.read, owner=self, exclusive=exclusive)


class CampaignExecutor:
    """A sliding in-flight window of query sessions over one kernel.

    ``submit(thunk)`` runs *thunk* immediately (synchronously, in
    submission order — determinism) inside a session frame and schedules
    its completion at ``start + elapsed`` on the kernel heap. When the
    window is full, admission first waits for the earliest completion,
    advancing the committed clock. ``concurrency <= 1`` bypasses the
    machinery entirely: the thunk runs on the committed clock, preserving
    exact legacy serial behaviour. Nested submits (a session submitting
    from inside a frame) also run inline.
    """

    def __init__(self, kernel, concurrency=1):
        self.kernel = kernel
        self.concurrency = max(1, int(concurrency))
        self._in_flight = 0
        #: Sessions run through a frame (bypassed serial calls excluded).
        self.sessions = 0
        #: Total simulated time spent inside sessions (the serial cost).
        self.busy_ms = 0.0

    def submit(self, thunk):
        """Run one session; returns the thunk's result."""
        if self.concurrency <= 1 or self.kernel.clock.in_frame:
            return thunk()
        while self._in_flight >= self.concurrency:
            self.kernel.run_next()
        start = self.kernel.now
        self.kernel.clock.push_frame(start)
        try:
            result = thunk()
        finally:
            end = self.kernel.clock.pop_frame()
        self._in_flight += 1
        self.sessions += 1
        self.busy_ms += max(0.0, end - start)
        from repro import obs

        if obs.enabled:
            gauge = obs.registry.gauge(
                "repro_inflight_sessions",
                "Sessions currently occupying the campaign window.",
            )
            gauge.inc()
        else:
            gauge = None

        def complete():
            self._in_flight -= 1
            if gauge is not None:
                gauge.dec()

        self.kernel.schedule_at(max(end, start), complete)
        return result

    def drain(self):
        """Wait for every in-flight session; commits the clock to the
        campaign makespan."""
        while self._in_flight:
            self.kernel.run_next()
