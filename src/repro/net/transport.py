"""Client-side query transport: encode, send, retry, back off, TCP fallback.

Hardened against the weather :mod:`repro.net.faults` can produce:

- retries back off exponentially with jitter on the *simulated* clock
  (:class:`~repro.net.resilience.BackoffPolicy`), so loss bursts are
  ridden out instead of hammered through;
- an optional per-query timeout budget bounds the total simulated time
  one query may consume across every retry, UDP and TCP alike;
- the TCP fallback retries (a single lost segment no longer kills a
  truncated-response query) and carries the qname into its failures;
- an optional shared :class:`~repro.net.resilience.CircuitBreaker`
  quarantines destinations that keep failing, failing fast while the
  circuit is open.

The whole retry state machine is written as a delay-yielding generator
(:meth:`Transport.session`): backoff waits and path latencies are events
on the :class:`~repro.net.sim.SimKernel` clock, which lets a campaign
executor keep many query sessions in flight at once. :meth:`Transport.query`
is the synchronous driver around it.
"""

from __future__ import annotations

import random

from repro import obs
from repro.dns.flags import Flag
from repro.dns.message import Message
from repro.dns.wire import WireError
from repro.net.resilience import BackoffPolicy

#: Default EDNS payload ceiling; responses above it are truncated on "UDP".
DEFAULT_PAYLOAD = 1232

#: Retry schedule used when callers do not supply their own.
DEFAULT_BACKOFF = BackoffPolicy()


def validate_reply(raw, query_id):
    """Parse *raw* and accept it as the reply to *query_id*, or None.

    Unparseable wire and mismatched message ids are both treated as
    off-path garbage — the caller retries as if the datagram never
    arrived. Shared by the sim-rail :class:`Transport` and the real-socket
    load generator (:mod:`repro.service.loadgen`): both must apply the
    same acceptance test or their loss accounting diverges.
    """
    if raw is None:
        return None
    try:
        response = Message.from_wire(raw)
    except WireError:
        return None
    if response.id != query_id:
        return None
    return response


class QueryFailure(Exception):
    """Raised when a query exhausts its retries without a usable response."""

    def __init__(self, reason, qname=None, dst_ip=None):
        super().__init__(reason)
        self.reason = reason
        self.qname = qname
        self.dst_ip = dst_ip


class CircuitOpenError(QueryFailure):
    """Fail-fast failure: the destination's circuit breaker is open."""


class Transport:
    """Sends DNS messages between simulated hosts with realistic semantics.

    - UDP first; on TC=1, retry over "TCP" (no size limit), itself retried
      up to *tcp_retries* extra times;
    - up to *retries* resends on loss/garbage, spaced by *backoff* on the
      simulated clock (pass ``backoff=None`` for immediate resends);
    - mismatched message ids and unparseable wire are treated as drops
      (off-path garbage);
    - *timeout_budget_ms* caps the simulated time one query may burn
      across all attempts; *breaker* (shared across transports) opens
      after repeated failed queries to one destination.
    """

    def __init__(
        self,
        network,
        source_ip,
        retries=2,
        backoff=DEFAULT_BACKOFF,
        timeout_budget_ms=None,
        tcp_retries=1,
        breaker=None,
    ):
        self.network = network
        self.source_ip = source_ip
        self.retries = retries
        self.backoff = backoff
        self.timeout_budget_ms = timeout_budget_ms
        self.tcp_retries = tcp_retries
        self.breaker = breaker
        self._rng = random.Random(f"transport:{source_ip}")

    def query(self, dst_ip, message):
        """Send *message*; returns the parsed response :class:`Message`.

        Raises :class:`QueryFailure` on timeout-equivalent outcomes and
        :class:`CircuitOpenError` (without touching the network) when the
        destination is quarantined.
        """
        return self.network.kernel.execute(self.session(dst_ip, message))

    def session(self, dst_ip, message):
        """Generator form of :meth:`query`: yields waits, returns the response.

        One in-flight query session: the schedule half emits backoff and
        path delays, the complete half parses and settles. Drive it with
        :meth:`~repro.net.sim.SimKernel.execute` (or ``yield from`` it
        inside another session).
        """
        wire = message.encode()
        qname = message.question[0].name if message.question else None
        if self.breaker is not None and not self.breaker.allow(dst_ip):
            if obs.enabled:
                self._count_failure("circuit-open")
            raise CircuitOpenError(
                f"circuit open for {dst_ip}", qname=qname, dst_ip=dst_ip
            )
        started_ms = self.network.clock_ms
        reason = f"no response from {dst_ip}"
        for attempt in range(self.retries + 1):
            if attempt:
                yield from self._back_off(attempt, "udp")
            if self._budget_spent(started_ms):
                reason = f"timeout budget exhausted for {dst_ip}"
                break
            raw = yield from self.network.exchange(self.source_ip, dst_ip, wire)
            response = validate_reply(raw, message.id)
            if response is None:
                continue
            if response.has_flag(Flag.TC):
                result = yield from self._tcp_session(
                    dst_ip, message, qname, started_ms
                )
                return result
            self._settle(dst_ip, True)
            return response
        self._settle(dst_ip, False)
        if obs.enabled:
            self._count_failure("udp")
        raise QueryFailure(reason, qname=qname, dst_ip=dst_ip)

    def _tcp_session(self, dst_ip, message, qname=None, started_ms=None):
        reason = f"TCP retry to {dst_ip} failed"
        for attempt in range(self.tcp_retries + 1):
            if attempt:
                yield from self._back_off(attempt, "tcp")
            if started_ms is not None and self._budget_spent(started_ms):
                reason = f"timeout budget exhausted for {dst_ip}"
                break
            raw = yield from self.network.exchange(
                self.source_ip, dst_ip, message.encode(), via_tcp=True
            )
            if raw is None:
                continue
            try:
                response = Message.from_wire(raw)
            except WireError as exc:
                reason = f"malformed TCP response from {dst_ip}: {exc}"
                continue
            if response.id != message.id:
                reason = f"TCP response id mismatch from {dst_ip}"
                continue
            self._settle(dst_ip, True)
            return response
        self._settle(dst_ip, False)
        if obs.enabled:
            self._count_failure("tcp")
        raise QueryFailure(reason, qname=qname, dst_ip=dst_ip)

    # -- resilience plumbing -------------------------------------------------

    def _back_off(self, attempt, transport):
        if self.backoff is not None:
            yield self.backoff.delay_ms(attempt, self._rng)
        if obs.enabled:
            obs.registry.counter(
                "repro_transport_retries_total",
                "Query retransmissions, by transport.",
                labelnames=("transport",),
            ).labels(transport=transport).inc()

    def _budget_spent(self, started_ms):
        if self.timeout_budget_ms is None:
            return False
        return self.network.clock_ms - started_ms >= self.timeout_budget_ms

    def _settle(self, dst_ip, success):
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success(dst_ip)
        else:
            self.breaker.record_failure(dst_ip)

    @staticmethod
    def _count_failure(kind):
        obs.registry.counter(
            "repro_transport_failures_total",
            "Queries that raised QueryFailure, by failure path.",
            labelnames=("kind",),
        ).labels(kind=kind).inc()
