"""Client-side query transport: encode, send, retry, TCP fallback."""

from __future__ import annotations

from repro.dns.flags import Flag
from repro.dns.message import Message
from repro.dns.wire import WireError

#: Default EDNS payload ceiling; responses above it are truncated on "UDP".
DEFAULT_PAYLOAD = 1232


class QueryFailure(Exception):
    """Raised when a query exhausts its retries without a usable response."""

    def __init__(self, reason, qname=None):
        super().__init__(reason)
        self.reason = reason
        self.qname = qname


class Transport:
    """Sends DNS messages between simulated hosts with realistic semantics.

    - UDP first; on TC=1, retry over "TCP" (no size limit);
    - up to *retries* resends on loss;
    - mismatched message ids are treated as drops (off-path garbage).
    """

    def __init__(self, network, source_ip, retries=2):
        self.network = network
        self.source_ip = source_ip
        self.retries = retries

    def query(self, dst_ip, message):
        """Send *message*; returns the parsed response :class:`Message`.

        Raises :class:`QueryFailure` on timeout-equivalent outcomes.
        """
        wire = message.to_wire()
        qname = message.question[0].name if message.question else None
        for __ in range(self.retries + 1):
            raw = self.network.send(self.source_ip, dst_ip, wire)
            if raw is None:
                continue
            try:
                response = Message.from_wire(raw)
            except WireError:
                continue
            if response.id != message.id:
                continue
            if response.has_flag(Flag.TC):
                return self._query_tcp(dst_ip, message)
            return response
        raise QueryFailure(f"no response from {dst_ip}", qname=qname)

    def _query_tcp(self, dst_ip, message):
        raw = self.network.send(self.source_ip, dst_ip, message.to_wire(), via_tcp=True)
        if raw is None:
            raise QueryFailure(f"TCP retry to {dst_ip} failed")
        try:
            response = Message.from_wire(raw)
        except WireError as exc:
            raise QueryFailure(f"malformed TCP response from {dst_ip}: {exc}") from exc
        if response.id != message.id:
            raise QueryFailure(f"TCP response id mismatch from {dst_ip}")
        return response
