"""A simulated Internet: IP registry, datagram delivery, access control.

Hosts are Python objects registered against IP addresses; "packets" are
real DNS wire bytes. The network enforces the property the paper's
methodology hinges on: *closed* resolvers only accept queries from inside
their own network, so measuring them requires a vantage point within
(the RIPE-Atlas substitute in :mod:`repro.scanner.atlas`).
"""

from repro.net.address import AddressAllocator
from repro.net.faults import (
    Blackout,
    Corruption,
    FaultPlan,
    Flapping,
    GilbertElliott,
    LatencyJitter,
    RateLimitRefused,
    parse_fault_spec,
)
from repro.net.network import Host, Network, NetworkStats
from repro.net.resilience import BackoffPolicy, CircuitBreaker
from repro.net.transport import CircuitOpenError, QueryFailure, Transport

__all__ = [
    "AddressAllocator",
    "BackoffPolicy",
    "Blackout",
    "CircuitBreaker",
    "CircuitOpenError",
    "Corruption",
    "FaultPlan",
    "Flapping",
    "GilbertElliott",
    "Host",
    "LatencyJitter",
    "Network",
    "NetworkStats",
    "QueryFailure",
    "RateLimitRefused",
    "Transport",
    "parse_fault_spec",
]
