"""Composable, deterministic fault injection for the simulated network.

The paper's measurements survived a hostile real Internet: resolvers that
"result in different response patterns" when re-queried (§5.2), timeouts
above the Item 6/7 thresholds, and servers degraded by NSEC3 CPU
exhaustion (CVE-2023-50868). The plain :class:`~repro.net.network.Network`
models only uniform packet loss, which exercises none of the client-side
noise handling. This module supplies the missing weather:

- :class:`GilbertElliott` — bursty packet loss (two-state Markov chain);
- :class:`LatencyJitter` — per-datagram jitter plus rare latency spikes;
- :class:`Blackout` — a scheduled host outage window on the simulated
  clock;
- :class:`Flapping` — a host that goes down and comes back periodically;
- :class:`Corruption` — response mangling: bit flips, truncated wire,
  wrong message id, pure garbage;
- :class:`RateLimitRefused` — a per-source token bucket that answers
  REFUSED once a client exceeds its rate.

Models compose through a :class:`FaultPlan` plugged into
``Network.set_faults``. Every model draws from its own seeded RNG and
reads only the simulated clock, so chaos runs are exactly reproducible.
Each injected fault is counted (``FaultPlan.injected`` and, when
telemetry is on, ``repro_net_faults_injected_total{kind=...}``), so a
chaos campaign is observable end to end.

The CLI accepts a compact spec (see :func:`parse_fault_spec`)::

    --faults chaos
    --faults burst:0.05:0.35:0.5,jitter:20:200:0.01
    --faults blackout:10.7.0.3:0:5000,corrupt:0.25:garbage+wrongid
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro import obs
from repro.dns.message import Message, make_response
from repro.dns.rcode import Rcode
from repro.dns.wire import WireError
from repro.net.address import normalize


@dataclass
class FaultContext:
    """What a fault model may inspect about one datagram in flight."""

    src_ip: str
    dst_ip: str
    wire: bytes
    via_tcp: bool
    network: object

    @property
    def clock_ms(self):
        return self.network.clock_ms


class FaultModel:
    """Base class: override any subset of the four hooks.

    Hooks run in order per datagram: every model's :meth:`delay_ms` is
    summed onto the path latency; the first :meth:`drop_reason` wins; the
    first :meth:`synthesize` short-circuits delivery with a crafted
    response; :meth:`corrupt` chains over the real response (returning
    ``None`` drops it on the return path).
    """

    kind = "fault"

    def delay_ms(self, ctx):
        return 0.0

    def drop_reason(self, ctx):
        return None

    def synthesize(self, ctx):
        return None

    def corrupt(self, ctx, response):
        return response


class GilbertElliott(FaultModel):
    """Bursty loss: a good/bad two-state Markov chain per destination.

    Real packet loss clusters (congested links, overloaded servers), which
    is what defeats naive fixed-count retries. The chain advances once per
    datagram; in the *bad* state datagrams drop with ``loss_bad``. TCP is
    exempt by default — the stream's own retransmissions are abstracted
    away, as with ``Network.loss_rate``.
    """

    kind = "burst"

    def __init__(
        self,
        p_enter=0.05,
        p_exit=0.35,
        loss_good=0.0,
        loss_bad=0.6,
        seed=0,
        udp_only=True,
        dst_ip=None,
    ):
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.udp_only = udp_only
        self.dst_ip = normalize(dst_ip) if dst_ip else None
        self._rng = random.Random(seed)
        self._bad = {}

    def drop_reason(self, ctx):
        if self.udp_only and ctx.via_tcp:
            return None
        if self.dst_ip is not None and ctx.dst_ip != self.dst_ip:
            return None
        bad = self._bad.get(ctx.dst_ip, False)
        if bad:
            if self._rng.random() < self.p_exit:
                bad = False
        elif self._rng.random() < self.p_enter:
            bad = True
        self._bad[ctx.dst_ip] = bad
        loss = self.loss_bad if bad else self.loss_good
        if loss and self._rng.random() < loss:
            return "loss"
        return None


class LatencyJitter(FaultModel):
    """Uniform per-datagram jitter plus rare, large latency spikes.

    Spikes model transient congestion or an NSEC3-exhausted resolver
    (CVE-2023-50868) pausing to hash; they are what a per-query timeout
    budget exists to bound.
    """

    kind = "jitter"

    def __init__(self, jitter_ms=25.0, spike_ms=250.0, spike_rate=0.01, seed=0):
        self.jitter_ms = jitter_ms
        self.spike_ms = spike_ms
        self.spike_rate = spike_rate
        self._rng = random.Random(seed)

    def delay_ms(self, ctx):
        delay = self._rng.random() * self.jitter_ms
        if self.spike_rate and self._rng.random() < self.spike_rate:
            delay += self.spike_ms
        return delay


class Blackout(FaultModel):
    """One host silently down for a scheduled simulated-clock window."""

    kind = "blackout"

    def __init__(self, dst_ip, start_ms, end_ms):
        self.dst_ip = normalize(dst_ip)
        self.start_ms = float(start_ms)
        self.end_ms = float(end_ms)

    def drop_reason(self, ctx):
        if ctx.dst_ip != self.dst_ip:
            return None
        if self.start_ms <= ctx.clock_ms < self.end_ms:
            return "down"
        return None


class Flapping(FaultModel):
    """A host that alternates between down and up windows forever.

    The host is down for the first ``down_fraction`` of every
    ``period_ms`` window (shifted by ``offset_ms``) — the repeating
    version of :class:`Blackout`, for resolvers that keep coming back
    just long enough to look alive.
    """

    kind = "flap"

    def __init__(self, dst_ip, period_ms=2000.0, down_fraction=0.5, offset_ms=0.0):
        self.dst_ip = normalize(dst_ip)
        self.period_ms = float(period_ms)
        self.down_fraction = down_fraction
        self.offset_ms = float(offset_ms)

    def is_down(self, clock_ms):
        phase = (clock_ms - self.offset_ms) % self.period_ms
        return phase < self.period_ms * self.down_fraction

    def drop_reason(self, ctx):
        if ctx.dst_ip != self.dst_ip:
            return None
        return "down" if self.is_down(ctx.clock_ms) else None


class Corruption(FaultModel):
    """Mangle responses on the return path.

    ``kinds`` picks the repertoire: ``bitflip`` (one random bit),
    ``truncate`` (wire cut in half), ``wrongid`` (message id xored — the
    off-path spoofing signature transports must discard), ``garbage``
    (random bytes that do not parse at all).
    """

    kind = "corrupt"

    KINDS = ("bitflip", "truncate", "wrongid", "garbage")

    def __init__(self, rate=0.2, kinds=KINDS, dst_ip=None, seed=0):
        unknown = set(kinds) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown corruption kinds: {sorted(unknown)}")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.dst_ip = normalize(dst_ip) if dst_ip else None
        self._rng = random.Random(seed)

    def corrupt(self, ctx, response):
        if self.dst_ip is not None and ctx.dst_ip != self.dst_ip:
            return response
        if self._rng.random() >= self.rate:
            return response
        style = self.kinds[self._rng.randrange(len(self.kinds))]
        if style == "bitflip":
            index = self._rng.randrange(len(response) * 8)
            mutated = bytearray(response)
            mutated[index // 8] ^= 1 << (index % 8)
            return bytes(mutated)
        if style == "truncate":
            return response[: max(2, len(response) // 2)]
        if style == "wrongid":
            mutated = bytearray(response)
            mutated[0] ^= 0x5A
            mutated[1] ^= 0xA5
            return bytes(mutated)
        return bytes(
            self._rng.randrange(256) for __ in range(self._rng.randrange(4, 64))
        )


class RateLimitRefused(FaultModel):
    """Answer REFUSED once a source exceeds its query rate.

    A token bucket per source ip, refilled on the simulated clock. This is
    the response-rate-limiting middlebox the paper's 14.7 K req/s scan had
    to stay under. Unparseable queries are silently dropped instead (no
    id to echo).
    """

    kind = "refused"

    def __init__(self, qps=100.0, burst=20, dst_ip=None):
        self.qps = float(qps)
        self.burst = float(burst)
        self.dst_ip = normalize(dst_ip) if dst_ip else None
        self._buckets = {}

    def synthesize(self, ctx):
        if self.dst_ip is not None and ctx.dst_ip != self.dst_ip:
            return None
        now = ctx.clock_ms
        tokens, last = self._buckets.get(ctx.src_ip, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) / 1000.0 * self.qps)
        if tokens >= 1.0:
            self._buckets[ctx.src_ip] = (tokens - 1.0, now)
            return None
        self._buckets[ctx.src_ip] = (tokens, now)
        try:
            query = Message.from_wire(ctx.wire)
        except WireError:
            return b""  # unparseable query: treated as a drop by the plan
        response = make_response(query)
        response.rcode = Rcode.REFUSED
        return response.to_wire()


class ProcessKill(FaultModel):
    """Seeded SIGKILL/hang injection into campaign *worker processes*.

    Unlike every other model this one never touches a datagram — all
    four hooks stay inert, so a plan carrying it is byte-identical to no
    plan at all on the network. The campaign supervisor
    (:mod:`repro.scanner.supervisor`) extracts it from the plan and each
    worker consults :meth:`decide` for its own death sentence: whether
    attempt *attempt* of shard *shard* should SIGKILL itself (or hang,
    with probability *hang_rate*) after completing a seeded number of
    units. *max_kills* bounds deaths per shard, so a bounded restart
    budget always converges.
    """

    kind = "kill"

    def __init__(self, rate=1.0, max_kills=1, hang_rate=0.0, seed=0):
        self.rate = float(rate)
        self.max_kills = int(max_kills)
        self.hang_rate = float(hang_rate)
        self.seed = int(seed)

    def decide(self, shard, attempt, units):
        """The fate of (shard, attempt): ``(action, after_units)``.

        *action* is ``"kill"``, ``"hang"``, or ``None``; *after_units*
        is how many of the shard's *units* complete before it strikes.
        Deterministic in (seed, shard, attempt): a restarted supervisor
        re-derives the same sentence.
        """
        if attempt >= self.max_kills:
            return None, None
        rng = random.Random(
            (self.seed * 1_000_003 + shard * 8191 + attempt * 131) & 0xFFFFFFFF
        )
        if rng.random() >= self.rate:
            return None, None
        action = "hang" if rng.random() < self.hang_rate else "kill"
        return action, rng.randrange(max(1, units))


@dataclass
class _Verdict:
    """What :meth:`FaultPlan.on_send` decided about one datagram."""

    drop_reason: str = ""
    response: bytes = None


class FaultPlan:
    """An ordered set of fault models applied to every datagram."""

    def __init__(self, models):
        self.models = list(models)
        #: Injection counts by model kind, always collected (obs-independent).
        self.injected = Counter()

    def process_faults(self):
        """The process-level models (:class:`ProcessKill`) in the plan."""
        return [m for m in self.models if isinstance(m, ProcessKill)]

    def _note(self, kind):
        self.injected[kind] += 1
        if obs.enabled:
            obs.registry.counter(
                "repro_net_faults_injected_total",
                "Faults injected into the simulated network, by kind.",
                labelnames=("kind",),
            ).labels(kind=kind).inc()
        if obs.events:
            obs.emit("fault.inject", fault=kind)

    def on_send(self, ctx):
        """Judge a datagram before delivery: ``(delay_ms, verdict|None)``."""
        delay = 0.0
        for model in self.models:
            extra = model.delay_ms(ctx)
            if extra:
                self._note(model.kind)
                delay += extra
        for model in self.models:
            reason = model.drop_reason(ctx)
            if reason is not None:
                self._note(model.kind)
                return delay, _Verdict(drop_reason=f"fault-{model.kind}")
        for model in self.models:
            wire = model.synthesize(ctx)
            if wire is not None:
                self._note(model.kind)
                if not wire:
                    return delay, _Verdict(drop_reason=f"fault-{model.kind}")
                return delay, _Verdict(response=wire)
        return delay, None

    def on_response(self, ctx, response):
        """Chain response mutations; ``None`` drops the response."""
        for model in self.models:
            mutated = model.corrupt(ctx, response)
            if mutated is None:
                self._note(model.kind)
                return None
            if mutated is not response:
                self._note(model.kind)
            response = mutated
        return response


#: Named chaos profiles for the CLI: mild-but-real weather that a hardened
#: client should absorb without changing any measured numbers.
FAULT_PRESETS = {
    "chaos": "burst:0.05:0.35:0.5,jitter:20:200:0.01,corrupt:0.08",
}


def _positional(args, casts, defaults):
    values = list(defaults)
    for index, raw in enumerate(args):
        if index >= len(casts):
            raise ValueError(f"too many arguments: {':'.join(args)}")
        values[index] = casts[index](raw)
    return values


def _parse_kinds(raw):
    return tuple(raw.split("+"))


def parse_fault_spec(spec, seed=0):
    """Build a :class:`FaultPlan` from a compact comma-separated spec.

    Grammar (all arguments optional unless shown)::

        burst[:p_enter[:p_exit[:loss_bad]]]
        jitter[:jitter_ms[:spike_ms[:spike_rate]]]
        blackout:IP:START_MS:END_MS
        flap:IP[:PERIOD_MS[:DOWN_FRACTION[:OFFSET_MS]]]
        corrupt[:rate[:KIND+KIND...]]          (bitflip|truncate|wrongid|garbage)
        refuse[:qps[:burst[:IP]]]
        kill[:rate[:max_per_shard[:hang_rate]]]   (worker SIGKILL/hang injection)

    A token naming a preset (``chaos``) expands in place. Every stochastic
    model is seeded from *seed* plus its position, so the same spec and
    seed reproduce the same weather.
    """
    tokens = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in FAULT_PRESETS:
            tokens.extend(FAULT_PRESETS[token].split(","))
        else:
            tokens.append(token)

    models = []
    for index, token in enumerate(tokens):
        name, *args = token.split(":")
        model_seed = seed * 1000 + index
        if name == "burst":
            p_enter, p_exit, loss_bad = _positional(
                args, (float, float, float), (0.05, 0.35, 0.6)
            )
            models.append(
                GilbertElliott(
                    p_enter=p_enter, p_exit=p_exit, loss_bad=loss_bad, seed=model_seed
                )
            )
        elif name == "jitter":
            jitter_ms, spike_ms, spike_rate = _positional(
                args, (float, float, float), (25.0, 250.0, 0.01)
            )
            models.append(
                LatencyJitter(
                    jitter_ms=jitter_ms,
                    spike_ms=spike_ms,
                    spike_rate=spike_rate,
                    seed=model_seed,
                )
            )
        elif name == "blackout":
            if len(args) != 3:
                raise ValueError("blackout needs IP:START_MS:END_MS")
            models.append(Blackout(args[0], float(args[1]), float(args[2])))
        elif name == "flap":
            if not args:
                raise ValueError("flap needs at least an IP")
            period, down, offset = _positional(
                args[1:], (float, float, float), (2000.0, 0.5, 0.0)
            )
            models.append(
                Flapping(
                    args[0], period_ms=period, down_fraction=down, offset_ms=offset
                )
            )
        elif name == "corrupt":
            rate, kinds = _positional(
                args, (float, _parse_kinds), (0.2, Corruption.KINDS)
            )
            models.append(Corruption(rate=rate, kinds=kinds, seed=model_seed))
        elif name == "refuse":
            qps, burst, dst = _positional(args, (float, float, str), (100.0, 20, None))
            models.append(RateLimitRefused(qps=qps, burst=burst, dst_ip=dst))
        elif name == "kill":
            rate, max_kills, hang_rate = _positional(
                args, (float, int, float), (1.0, 1, 0.0)
            )
            models.append(
                ProcessKill(
                    rate=rate,
                    max_kills=max_kills,
                    hang_rate=hang_rate,
                    seed=model_seed,
                )
            )
        else:
            known = "burst, jitter, blackout, flap, corrupt, refuse, kill"
            presets = ", ".join(sorted(FAULT_PRESETS))
            raise ValueError(
                f"unknown fault model {name!r} (known: {known}; presets: {presets})"
            )
    return FaultPlan(models)
