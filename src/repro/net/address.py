"""Synthetic address allocation for the simulated Internet."""

from __future__ import annotations

import ipaddress


class AddressAllocator:
    """Hands out unique, deterministic IPv4 and IPv6 addresses.

    IPv4 comes from documentation + benchmark style space spread over
    distinct /16s so per-AS grouping looks realistic; IPv6 from a /32.
    Determinism matters: the same testbed seed yields the same addresses,
    keeping benchmark output stable run-to-run.
    """

    def __init__(self, v4_base="10.0.0.0", v6_base="2001:db8::"):
        self._v4_next = int(ipaddress.IPv4Address(v4_base)) + 1
        self._v6_next = int(ipaddress.IPv6Address(v6_base)) + 1

    def next_v4(self):
        address = ipaddress.IPv4Address(self._v4_next)
        self._v4_next += 1
        return str(address)

    def next_v6(self):
        address = ipaddress.IPv6Address(self._v6_next)
        self._v6_next += 1
        return str(address)

    def next_v4_block(self, count):
        return [self.next_v4() for __ in range(count)]

    def next_v6_block(self, count):
        return [self.next_v6() for __ in range(count)]


def is_ipv6(address):
    """True for IPv6 literals; raises ValueError for non-addresses."""
    return isinstance(
        ipaddress.ip_address(address), ipaddress.IPv6Address
    )


def normalize(address):
    """Canonical text form (collapses IPv6, strips leading zeros)."""
    return str(ipaddress.ip_address(address))
