"""Client-side resilience primitives: retry backoff and circuit breaking.

The paper's scanners ran against the real Internet, where dead or
degraded servers are the norm rather than the exception (§5.2 re-probing,
the timeout thresholds of Items 6-7). These helpers give every
:class:`~repro.net.transport.Transport` the two standard defences:

- :class:`BackoffPolicy` — capped exponential backoff with jitter,
  advanced on the *simulated* clock so retry storms cost simulated time
  exactly as they cost real scanners wall-clock time;
- :class:`CircuitBreaker` — a per-destination closed/open/half-open
  breaker that quarantines servers which keep timing out or emitting
  garbage, so a campaign degrades gracefully instead of burning its
  query budget on dead hosts.

Both are deterministic: backoff jitter comes from a seeded RNG and the
breaker reads whatever clock it is given (normally the network's
simulated milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

#: Circuit states (string-valued for cheap introspection and metrics).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: ``base * factor**(attempt-1)`` + jitter.

    ``jitter`` is the fraction of the raw delay added uniformly at random
    on top, decorrelating clients that fail in lockstep. ``delay_ms`` is
    pure given an RNG, so transports stay deterministic under a seed.
    """

    base_ms: float = 40.0
    factor: float = 2.0
    max_ms: float = 2000.0
    jitter: float = 0.5

    def delay_ms(self, attempt, rng):
        """Delay before retry *attempt* (1 = first retry), in ms."""
        raw = min(self.max_ms, self.base_ms * self.factor ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


class _BreakerState:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self):
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Per-destination circuit breaker over a (simulated) clock.

    - *closed*: traffic flows; ``failure_threshold`` consecutive failed
      queries trip the circuit;
    - *open*: :meth:`allow` refuses instantly (the caller fails fast
      without spending network time) until ``recovery_ms`` has elapsed;
    - *half-open*: one probe query is let through; success closes the
      circuit, failure re-opens it for another ``recovery_ms``.

    One breaker instance is meant to be shared by every transport of a
    campaign so that evidence about a dead server accumulates in one
    place.
    """

    def __init__(self, clock, failure_threshold=5, recovery_ms=1500.0):
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_ms = recovery_ms
        self._targets = {}
        #: (dst, from, to) transition log, for tests and reporting.
        self.transitions = []

    def _get(self, dst):
        target = self._targets.get(dst)
        if target is None:
            target = self._targets[dst] = _BreakerState()
        return target

    def _move(self, dst, target, new_state):
        if target.state == new_state:
            return
        self.transitions.append((dst, target.state, new_state))
        target.state = new_state
        if obs.enabled:
            obs.registry.counter(
                "repro_circuit_transitions_total",
                "Circuit-breaker state transitions, by new state.",
                labelnames=("to",),
            ).labels(to=new_state).inc()
        if obs.events:
            obs.emit(
                "breaker.transition",
                dst=str(dst),
                src=self.transitions[-1][1],
                to=new_state,
            )

    # -- the breaker protocol ------------------------------------------------

    def allow(self, dst):
        """May a query to *dst* be attempted right now?"""
        target = self._targets.get(dst)
        if target is None or target.state == CLOSED:
            return True
        if target.state == OPEN:
            if self.clock() - target.opened_at >= self.recovery_ms:
                self._move(dst, target, HALF_OPEN)
                return True
            return False
        # Half-open: the synchronous world has at most one probe in
        # flight, so a second allow() means the previous probe never
        # reported back — let it through rather than wedge.
        return True

    def record_success(self, dst):
        target = self._get(dst)
        target.failures = 0
        self._move(dst, target, CLOSED)

    def record_failure(self, dst):
        target = self._get(dst)
        target.failures += 1
        if target.state == HALF_OPEN or target.failures >= self.failure_threshold:
            target.opened_at = self.clock()
            self._move(dst, target, OPEN)

    # -- introspection -------------------------------------------------------

    def state(self, dst):
        target = self._targets.get(dst)
        return target.state if target is not None else CLOSED

    def quarantined(self):
        """Destinations currently not accepting traffic (open circuits)."""
        return sorted(
            dst
            for dst, target in self._targets.items()
            if target.state == OPEN
            and self.clock() - target.opened_at < self.recovery_ms
        )
