"""Worker-fleet plumbing for multi-process campaigns.

The campaign supervisor (:mod:`repro.scanner.supervisor`) shards a
measurement across OS processes; this module owns the process-level
machinery, which knows nothing about DNS:

- :class:`WorkerHandle` — one subprocess from a ``multiprocessing``
  **spawn** context (fork would duplicate the parent's signed testbed
  and any open journal file descriptors; spawn gives every worker a
  clean interpreter that rebuilds its world deterministically);
- the **heartbeat file protocol** — each worker atomically rewrites a
  small JSON file (wall-clock time, phase, units completed) from a
  daemon thread, so supervision needs no pipes that a SIGKILL could
  leave half-read;
- :class:`Watchdog` — classifies a worker as making progress or stalled
  by watching ``(phase, units, built)`` transitions on the wall clock.
  Build phases complete no units but report a monotonically increasing
  ``built`` count (zones signed, construction milestones); the startup
  exemption is granted only while that count advances, so a slow cold
  build survives and a build hung mid-zone is condemned;
- :func:`backoff_delay` — bounded exponential restart backoff.

Heartbeats are ephemeral coordination state, not durable records: they
are written atomically (tmp + rename) but never fsynced.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

#: How often a worker's heartbeat thread rewrites its file.
HEARTBEAT_INTERVAL_S = 0.2

#: Phases in which unit progress is legitimately zero; the watchdog
#: instead demands that the ``built`` counter keeps advancing there.
STARTUP_PHASES = ("init", "build")


@dataclass
class Heartbeat:
    """One worker's last sign of life."""

    t: float          # wall-clock time of the write (time.time())
    pid: int
    attempt: int
    phase: str
    units_done: int
    #: Monotonic build-phase progress: zones signed / construction
    #: milestones passed. Lets the watchdog tell a slow cold build
    #: (count advances) from a hung one (count freezes).
    built: int = 0


def write_heartbeat(path, beat):
    """Atomically replace the heartbeat file (a reader never sees a torn
    write — it sees the previous beat)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "t": beat.t,
                "pid": beat.pid,
                "attempt": beat.attempt,
                "phase": beat.phase,
                "units_done": beat.units_done,
                "built": beat.built,
            },
            handle,
        )
    os.replace(tmp, path)


def read_heartbeat(path):
    """The last heartbeat, or None (missing file, or a beat from a
    foreign/older format — both mean "no signal")."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        return Heartbeat(
            t=float(doc["t"]),
            pid=int(doc["pid"]),
            attempt=int(doc["attempt"]),
            phase=str(doc["phase"]),
            units_done=int(doc["units_done"]),
            # Tolerated as absent: beats written by an older worker.
            built=int(doc.get("built", 0)),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


class HeartbeatWriter:
    """Worker-side heartbeat: a daemon thread beating every interval.

    The thread proves liveness (the ``t`` field advances); *progress* is
    whatever the worker reports through :meth:`advance`. A SIGKILL takes
    the thread down with the process — exactly the silence the
    supervisor's watchdog is listening for.
    """

    def __init__(self, path, attempt, interval_s=HEARTBEAT_INTERVAL_S):
        self.path = str(path)
        self.attempt = attempt
        self.interval_s = interval_s
        self.phase = "init"
        self.units_done = 0
        self.built = 0
        self._stop = threading.Event()
        self._thread = None
        # The beating thread and the worker's advance() calls share one
        # tmp path; without the lock two concurrent writes can race the
        # rename (os.replace on a tmp file the other beat just renamed).
        self._lock = threading.Lock()

    def _beat(self):
        with self._lock:
            write_heartbeat(
                self.path,
                Heartbeat(
                    t=time.time(),
                    pid=os.getpid(),
                    attempt=self.attempt,
                    phase=self.phase,
                    units_done=self.units_done,
                    built=self.built,
                ),
            )

    def start(self, phase="init"):
        self.phase = phase
        self._beat()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stop.wait(self.interval_s):
            self._beat()

    def advance(self, units_done=None, phase=None):
        """Report progress; also beats immediately (phase changes and
        unit completions should not wait out the interval)."""
        if units_done is not None:
            self.units_done = units_done
        if phase is not None:
            self.phase = phase
        self._beat()

    def tick_built(self, n=1):
        """Bump the build-progress counter without forcing a write.

        Fired once per signed zone / construction milestone — far too
        often to rewrite the file each time; the daemon beat publishes
        the latest count within one interval, which is all the
        watchdog's stall deadline needs.
        """
        self.built += n

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)


class WorkerHandle:
    """One spawned worker process plus its heartbeat channel."""

    def __init__(self, target, spec, heartbeat_path):
        self.heartbeat_path = str(heartbeat_path)
        ctx = multiprocessing.get_context("spawn")
        self.process = ctx.Process(target=target, args=(spec,), daemon=True)

    def start(self):
        self.process.start()

    def is_alive(self):
        return self.process.is_alive()

    @property
    def exitcode(self):
        return self.process.exitcode

    @property
    def pid(self):
        return self.process.pid

    def kill(self):
        """SIGKILL — for workers the watchdog has given up on."""
        if self.process.is_alive():
            self.process.kill()

    def join(self, timeout=None):
        self.process.join(timeout)

    def close(self):
        try:
            self.process.close()
        except ValueError:
            pass  # still running (caller kept it alive deliberately)

    def heartbeat(self):
        return read_heartbeat(self.heartbeat_path)


class Watchdog:
    """Progress tracking for one worker on the wall clock.

    ``observe`` feeds it the latest heartbeat; ``stalled`` is True when
    no progress transition has been seen for *stall_timeout_s*. Progress
    means the ``(attempt, phase, units_done, built)`` tuple changed.
    During startup phases units legitimately stay at zero, but the
    worker reports every signed zone through ``built`` — the deadline is
    extended only while that count advances, so a merely *beating* but
    hung build (alive heartbeat thread, frozen main thread) is condemned
    once the timeout elapses.
    """

    def __init__(self, stall_timeout_s, clock=time.time):
        self.stall_timeout_s = stall_timeout_s
        self._clock = clock
        self.reset()

    def reset(self):
        self._last_progress = None
        self._last_change = self._clock()

    def observe(self, beat):
        now = self._clock()
        if beat is None:
            return  # no file yet: the spawn itself is covered by the deadline
        progress = (beat.attempt, beat.phase, beat.units_done, beat.built)
        if progress != self._last_progress:
            self._last_progress = progress
            self._last_change = now

    def stalled(self):
        return self._clock() - self._last_change > self.stall_timeout_s


def backoff_delay(attempt, base_s, cap_s=30.0):
    """Exponential restart backoff: base * 2^(attempt-1), capped."""
    if attempt <= 0:
        return 0.0
    return min(cap_s, base_s * (2 ** (attempt - 1)))
