"""The datagram fabric connecting simulated hosts.

Delivery is synchronous from the caller's point of view (a query returns
its response), but time is owned by a :class:`~repro.net.sim.SimKernel`:
every exchange is a delay-yielding generator whose waits — path latency,
injected fault delays — become events on the kernel clock, so resolvers
and scanners experience timeouts and retries exactly as their real
counterparts do, and a campaign executor can overlap many sessions on the
same clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro import obs
from repro.net.address import is_ipv6, normalize
from repro.net.faults import FaultContext
from repro.net.sim import SimKernel

#: The public network id: hosts here are reachable from anywhere.
PUBLIC = "public"

#: Resolved per-transport metric children for the exchange hot path.
_EXCHANGE_CHILDREN = obs.ChildCache()


class Host:
    """Interface for anything with an IP address.

    Subclasses implement :meth:`handle_datagram`, returning response wire
    bytes (or ``None`` to drop). ``via_tcp`` distinguishes the retry path
    after truncation.
    """

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        raise NotImplementedError


@dataclass
class NetworkStats:
    """Aggregate counters for traffic observation and the ethics ablation.

    ``bytes_sent`` counts bytes that actually went onto a path: datagrams
    the loss model discards before delivery contribute nothing.
    """

    datagrams: int = 0
    tcp_queries: int = 0
    dropped: int = 0
    refused_closed: int = 0
    bytes_sent: int = 0

    def reset(self):
        for spec in fields(self):
            setattr(self, spec.name, spec.default)


class Network:
    """IP registry plus delivery with loss, latency, and closed networks."""

    def __init__(
        self, loss_rate=0.0, base_latency_ms=10.0, seed=0, faults=None, kernel=None
    ):
        self._hosts = {}
        #: host ip -> network id; queries to a non-public network id are
        #: only delivered when the source is in the same network.
        self._network_of = {}
        self._rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.base_latency_ms = base_latency_ms
        #: The simulation kernel owning this network's clock. Networks can
        #: share one kernel (one run, one clock); by default each gets its
        #: own.
        self.kernel = kernel if kernel is not None else SimKernel()
        self.stats = NetworkStats()
        #: Optional :class:`repro.net.faults.FaultPlan` judging every datagram.
        self.faults = faults
        # Span durations measure simulated time. This bind is implicit
        # (non-exclusive): it keeps the legacy last-network-wins behaviour
        # until a run claims the tracer clock via ``kernel.bind_obs()``.
        self.kernel.bind_obs(exclusive=False)

    @property
    def clock_ms(self):
        """Simulated time, read through the kernel (frame-aware)."""
        return self.kernel.clock.read()

    @clock_ms.setter
    def clock_ms(self, value):
        self.kernel.clock.write(value)

    # -- registration -------------------------------------------------------

    def attach(self, ip, host, network_id=PUBLIC):
        """Register *host* at *ip*; non-public network ids are closed."""
        ip = normalize(ip)
        if ip in self._hosts:
            raise ValueError(f"address {ip} already attached")
        self._hosts[ip] = host
        self._network_of[ip] = network_id
        return ip

    def detach(self, ip):
        ip = normalize(ip)
        self._hosts.pop(ip, None)
        self._network_of.pop(ip, None)

    def set_faults(self, plan):
        """Install (or clear, with ``None``) a fault-injection plan."""
        self.faults = plan

    def host_at(self, ip):
        """The host attached at *ip*, or None."""
        return self._hosts.get(normalize(ip))

    def network_of(self, ip):
        """The network segment an address belongs to (default: public)."""
        return self._network_of.get(normalize(ip), PUBLIC)

    def addresses(self, ipv6=None):
        """All attached addresses, optionally filtered by family."""
        result = []
        for ip in self._hosts:
            if ipv6 is None or is_ipv6(ip) == ipv6:
                result.append(ip)
        return sorted(result)

    # -- delivery -------------------------------------------------------------

    def send(self, src_ip, dst_ip, wire, via_tcp=False):
        """Deliver *wire* from *src_ip* to *dst_ip*; returns response bytes.

        ``None`` models packet loss or an unreachable / refusing host.
        The exchange runs on the kernel: at the top level each wait is a
        heap event; nested sends (a resolver recursing inside
        ``handle_datagram``) and sends inside a session frame run inline.
        """
        return self.kernel.execute(self.exchange(src_ip, dst_ip, wire, via_tcp))

    def exchange(self, src_ip, dst_ip, wire, via_tcp=False):
        """Generator form of :meth:`send`: yields delays, returns response."""
        src_ip = normalize(src_ip)
        dst_ip = normalize(dst_ip)
        self.stats.datagrams += 1
        if via_tcp:
            self.stats.tcp_queries += 1
        if not obs.enabled:
            response, __ = yield from self._exchange_steps(
                src_ip, dst_ip, wire, via_tcp
            )
            return response

        transport = "tcp" if via_tcp else "udp"
        span = (
            obs.tracer.start("net.hop", dst=dst_ip, transport=transport)
            if obs.tracing
            else None
        )
        response, drop = yield from self._exchange_steps(src_ip, dst_ip, wire, via_tcp)
        if span is not None:
            span.set(delivered=response is not None)
            if drop:
                span.set(drop=drop)
            obs.tracer.finish(span)
        children = _EXCHANGE_CHILDREN.get(obs.registry, transport)
        if children is None:
            children = _EXCHANGE_CHILDREN.put(
                transport,
                (
                    obs.registry.counter(
                        "repro_net_datagrams_total",
                        "Datagrams entering the simulated network, "
                        "by transport.",
                        labelnames=("transport",),
                    ).labels(transport=transport),
                    obs.registry.counter(
                        "repro_net_bytes_total",
                        "Wire bytes moved, by direction (loss-dropped "
                        "queries excluded).",
                        labelnames=("direction",),
                    ).labels(direction="query"),
                    obs.registry.counter(
                        "repro_net_bytes_total", labelnames=("direction",)
                    ).labels(direction="response"),
                ),
            )
        datagrams, query_bytes, response_bytes = children
        datagrams.inc()
        if drop:
            obs.registry.counter(
                "repro_net_drops_total",
                "Datagrams not delivered, by reason.",
                labelnames=("reason",),
            ).labels(reason=drop).inc()
        if drop != "loss":
            query_bytes.inc(len(wire))
        if response is not None:
            response_bytes.inc(len(response))
        return response

    def _exchange_steps(self, src_ip, dst_ip, wire, via_tcp):
        """Move one datagram; yields waits, returns ``(response, drop_reason)``.

        The yield points are exactly where the serial fabric used to do
        ``clock_ms +=``, in the same order relative to every RNG draw, so
        driving this generator inline reproduces the legacy clock and
        randomness trajectories bit for bit.
        """
        yield self._path_latency()
        ctx = None
        if self.faults is not None:
            ctx = FaultContext(src_ip, dst_ip, wire, via_tcp, self)
            delay, verdict = self.faults.on_send(ctx)
            if delay:
                yield delay
            if verdict is not None:
                if verdict.drop_reason:
                    self.stats.dropped += 1
                    return None, verdict.drop_reason
                # A synthesized response (e.g. rate-limited REFUSED): the
                # query crossed the path and a real answer came back.
                self.stats.bytes_sent += len(wire) + len(verdict.response)
                yield self._path_latency()
                return verdict.response, ""
        host = self._hosts.get(dst_ip)
        if host is None:
            self.stats.dropped += 1
            self.stats.bytes_sent += len(wire)
            return None, "unreachable"
        dst_network = self._network_of.get(dst_ip, PUBLIC)
        if dst_network != PUBLIC and self.network_of(src_ip) != dst_network:
            # Closed resolver: silently unreachable from the outside, the
            # reason the paper needed RIPE Atlas probes.
            self.stats.refused_closed += 1
            self.stats.bytes_sent += len(wire)
            return None, "closed"
        if not via_tcp and self.loss_rate and self._rng.random() < self.loss_rate:
            # Lost before delivery: the datagram never crossed a path, so
            # it contributes no bytes.
            self.stats.dropped += 1
            return None, "loss"
        self.stats.bytes_sent += len(wire)
        response = host.handle_datagram(wire, src_ip, via_tcp=via_tcp)
        if response is not None and ctx is not None:
            mutated = self.faults.on_response(ctx, response)
            if mutated is None:
                # The response was eaten on the return path.
                self.stats.dropped += 1
                return None, "fault-response"
            response = mutated
        if response is not None:
            yield self._path_latency()
            self.stats.bytes_sent += len(response)
        return response, ""

    def _path_latency(self):
        jitter = self._rng.random() * self.base_latency_ms * 0.2
        return self.base_latency_ms + jitter
