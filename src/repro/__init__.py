"""repro — reproduction of *Zeros Are Heroes: NSEC3 Parameter Settings in the Wild* (IMC 2024).

This package implements, from scratch and in pure Python:

- a complete DNS wire-format codec (:mod:`repro.dns`),
- DNSSEC cryptography and signing/validation (:mod:`repro.crypto`,
  :mod:`repro.dnssec`),
- a zone model with NSEC/NSEC3 chain generation (:mod:`repro.zone`),
- a simulated Internet with authoritative name servers and validating
  recursive resolvers (:mod:`repro.net`, :mod:`repro.server`,
  :mod:`repro.resolver`),
- the paper's measurement methodology: calibrated synthetic populations,
  the ``rfc9276-in-the-wild.com`` probe zones, bulk scanners, and the
  RFC 9276 compliance engine (:mod:`repro.testbed`, :mod:`repro.scanner`,
  :mod:`repro.core`, :mod:`repro.analysis`).

The headline entry points are re-exported here for convenience.
"""

from repro.dns.name import Name
from repro.dns.message import Message, Question
from repro.dns.rrset import RRset
from repro.core.guidance import GUIDANCE, GuidanceItem
from repro.core.zone_compliance import check_zone_compliance, ZoneComplianceReport
from repro.core.resolver_compliance import classify_resolver, ResolverClassification

__version__ = "1.0.0"

__all__ = [
    "Name",
    "Message",
    "Question",
    "RRset",
    "GUIDANCE",
    "GuidanceItem",
    "check_zone_compliance",
    "ZoneComplianceReport",
    "classify_resolver",
    "ResolverClassification",
    "__version__",
]
