"""Figure regeneration: the data series behind the paper's Figures 1–3.

Figures 1 and 3 exist in two equivalent forms: the original
list-at-once functions and ``update(record)``-style accumulators
(:class:`Figure1Accumulator`, :class:`Figure3Accumulator`) folding
results as they arrive with memory bounded by the number of *distinct*
x-axis values, not the number of samples. The list forms are thin
wrappers over the accumulators.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.cdf import Cdf, StreamingCdf


@dataclass
class Figure1:
    """CDFs of additional iterations and salt length (Figure 1)."""

    iterations_cdf: object
    salt_length_cdf: object

    def rows(self, xs=(0, 1, 2, 5, 8, 10, 16, 25, 50, 100, 150, 500)):
        """(x, %domains with iterations ≤ x, %domains with salt ≤ x B)."""
        return [
            (
                x,
                100.0 * self.iterations_cdf.fraction_at_or_below(x),
                100.0 * self.salt_length_cdf.fraction_at_or_below(x),
            )
            for x in xs
        ]


class Figure1Accumulator:
    """Fold stage-2 scan results into Figure 1's two CDFs incrementally."""

    def __init__(self):
        self.iterations = StreamingCdf()
        self.salt_lengths = StreamingCdf()

    def update(self, result):
        if not result.nsec3_enabled:
            return self
        self.iterations.update(result.report.iterations)
        self.salt_lengths.update(result.report.salt_length)
        return self

    def figure(self):
        return Figure1(self.iterations, self.salt_lengths)


def figure1_series(scan_results):
    """Figure 1 from stage-2 scan results (NSEC3-enabled domains only)."""
    accumulator = Figure1Accumulator()
    for result in scan_results:
        accumulator.update(result)
    return accumulator.figure()


@dataclass
class Figure2:
    """CDFs over popularity ranks (Figure 2)."""

    #: Ranks of all NSEC3-enabled ranked domains.
    nsec3_rank_cdf: Cdf
    #: Ranks of NSEC3-enabled ranked domains with zero iterations.
    zero_it_rank_cdf: Cdf
    #: Ranks of NSEC3-enabled ranked domains without salt.
    no_salt_rank_cdf: Cdf
    list_size: int
    counts: dict

    def rows(self, buckets=10):
        """Rank-bucket rows: (upper rank, % of each curve at or below)."""
        rows = []
        for bucket in range(1, buckets + 1):
            upper = self.list_size * bucket // buckets
            rows.append(
                (
                    upper,
                    100.0 * self.nsec3_rank_cdf.fraction_at_or_below(upper),
                    100.0 * self.zero_it_rank_cdf.fraction_at_or_below(upper),
                    100.0 * self.no_salt_rank_cdf.fraction_at_or_below(upper),
                )
            )
        return rows


def figure2_series(scan_results, specs, list_size):
    """Figure 2: intersect scan results with the synthetic Tranco list.

    *specs* supply the rank assignment (scan results identify domains by
    name); *list_size* is the ranking's length.
    """
    rank_of = {spec.name: spec.tranco_rank for spec in specs if spec.tranco_rank}
    nsec3_ranks, zero_ranks, nosalt_ranks = [], [], []
    ranked_dnssec = 0
    for result in scan_results:
        rank = rank_of.get(result.domain)
        if rank is None:
            continue
        ranked_dnssec += 1
        if not result.nsec3_enabled:
            continue
        nsec3_ranks.append(rank)
        if result.report.iterations == 0:
            zero_ranks.append(rank)
        if result.report.salt_length == 0:
            nosalt_ranks.append(rank)
    counts = {
        "ranked_dnssec": ranked_dnssec,
        "ranked_nsec3": len(nsec3_ranks),
        "zero_iterations": len(zero_ranks),
        "no_salt": len(nosalt_ranks),
        "both": 0,
    }
    return Figure2(
        Cdf(nsec3_ranks), Cdf(zero_ranks), Cdf(nosalt_ranks), list_size, counts
    )


@dataclass
class Figure3Category:
    """One subfigure of Figure 3 (e.g. open IPv4)."""

    category: str
    validators: int
    #: iteration count -> (nxdomain %, ad+nxdomain %, servfail %).
    series: dict

    def rows(self):
        return [
            (count, *self.series[count]) for count in sorted(self.series)
        ]


class Figure3Accumulator:
    """Fold survey entries into one Figure 3 subfigure incrementally.

    Memory is O(distinct probe iteration counts) — ~50 keys — however
    many resolvers stream through. Only validating resolvers contribute,
    as in the paper.
    """

    def __init__(self):
        self.validators = 0
        self._tallies = defaultdict(lambda: [0, 0, 0])

    def update(self, entry):
        if not entry.classification.is_validating:
            return self
        self.validators += 1
        for key, result in entry.matrix.items():
            if not isinstance(key, int):
                continue
            if result.is_nxdomain:
                self._tallies[key][0] += 1
                if result.ad:
                    self._tallies[key][1] += 1
            elif result.is_servfail:
                self._tallies[key][2] += 1
        return self

    def figure(self, category):
        total = self.validators
        series = {}
        for count, (nx, adnx, servfail) in self._tallies.items():
            if total:
                series[count] = (
                    100.0 * nx / total,
                    100.0 * adnx / total,
                    100.0 * servfail / total,
                )
            else:
                series[count] = (0.0, 0.0, 0.0)
        return Figure3Category(category=category, validators=total, series=series)


def figure3_series(entries, category):
    """Build one Figure 3 subfigure from survey entries.

    *entries* are :class:`repro.scanner.resolver_scan.SurveyEntry` for one
    (open/closed, v4/v6) category; only validating resolvers contribute,
    as in the paper.
    """
    accumulator = Figure3Accumulator()
    for entry in entries:
        accumulator.update(entry)
    return accumulator.figure(category)
