"""Analysis: turning scan output into the paper's tables and figures."""

from repro.analysis.cdf import Cdf, StreamingCdf
from repro.analysis.sketch import QuantileSketch, SpaceSavingTopK, StreamStats
from repro.analysis.stats import (
    DomainHeadlineAccumulator,
    ResolverHeadlineAccumulator,
    domain_headline_stats,
    resolver_headline_stats,
)
from repro.analysis.tables import OperatorTableAccumulator, operator_table
from repro.analysis.figures import (
    Figure1Accumulator,
    Figure3Accumulator,
    figure1_series,
    figure2_series,
    figure3_series,
)
from repro.analysis.longitudinal import compliance_timeline
from repro.analysis.export import (
    classifications_from_jsonl,
    classifications_to_jsonl,
    domain_results_from_jsonl,
    domain_results_to_jsonl,
)

__all__ = [
    "Cdf",
    "StreamingCdf",
    "QuantileSketch",
    "SpaceSavingTopK",
    "StreamStats",
    "DomainHeadlineAccumulator",
    "ResolverHeadlineAccumulator",
    "domain_headline_stats",
    "resolver_headline_stats",
    "OperatorTableAccumulator",
    "operator_table",
    "Figure1Accumulator",
    "Figure3Accumulator",
    "figure1_series",
    "figure2_series",
    "figure3_series",
    "compliance_timeline",
    "classifications_from_jsonl",
    "classifications_to_jsonl",
    "domain_results_from_jsonl",
    "domain_results_to_jsonl",
]
