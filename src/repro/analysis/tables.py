"""Table 2 regeneration: operator aggregation of NSEC3-enabled domains.

The paper processes the NS records of all NSEC3-enabled domains,
aggregates the NS targets by *registered domain* (even across public
suffixes), and reports the 10 operators that exclusively serve the most
domains, with each operator's dominant NSEC3 parameter settings.

:class:`OperatorTableAccumulator` is the ``update(result)``-style
streaming form: per-operator tallies ride on a
:class:`~repro.analysis.sketch.SpaceSavingTopK` so memory is bounded by
the sketch capacity, not the scan size. While the true operator
cardinality fits the capacity (the calibrated universe is a dozen
operators; real-world NS namespaces are a few thousand) the sketch is
exact and :func:`operator_table` — now a thin fold over the accumulator
— renders byte-identical tables from a stream or a list.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.sketch import SpaceSavingTopK


def registered_domain(ns_target):
    """The registered domain of an NS target: its last two labels.

    Public-suffix handling in the real study is more involved; the
    synthetic namespace always uses two-label registrations.
    """
    labels = [l for l in ns_target.rstrip(".").split(".") if l]
    if len(labels) < 2:
        return ns_target.rstrip(".")
    return ".".join(labels[-2:]).lower()


@dataclass
class OperatorRow:
    """One row of Table 2."""

    operator: str
    domains: int
    share_pct: float
    #: Most common parameter settings: [(count, iterations, salt_length)].
    top_params: list

    def params_text(self):
        return ", ".join(f"{it}/{salt}" for __, it, salt in self.top_params)


class OperatorTableAccumulator:
    """Fold stage-2 scan results into Table 2 tallies, one at a time.

    Only *exclusively served* domains count (all NS targets under one
    registered domain), mirroring the paper. *capacity* bounds the
    distinct operators tracked; overflow falls back to space-saving
    eviction (counts become upper bounds, flagged via :attr:`exact`).
    """

    def __init__(self, capacity=4096):
        self.nsec3_total = 0
        self._domains = SpaceSavingTopK(capacity)
        #: operator -> Counter of (iterations, salt_length), evicted in
        #: lockstep with the count sketch.
        self._params = {}

    def update(self, result):
        if not result.nsec3_enabled:
            return self
        self.nsec3_total += 1
        operators = {registered_domain(t) for t in result.ns_targets}
        if len(operators) != 1:
            return self  # not exclusively served
        operator = next(iter(operators))
        self._domains.update(operator)
        params = self._params.get(operator)
        if params is None:
            params = self._params[operator] = Counter()
            for evicted in [key for key in self._params if key not in self._domains]:
                del self._params[evicted]
        params[(result.report.iterations, result.report.salt_length)] += 1
        return self

    @property
    def exact(self):
        """True while no operator has been evicted (counts are exact)."""
        return self._domains.exact

    def rows(self, top_n=10, params_coverage=0.999):
        """The rendered Table 2 rows, largest operators first.

        Iterates operators in first-seen order before the stable sort,
        so tie-breaks match the materialised computation exactly.
        """
        rows = []
        for operator, count in self._domains.counts.items():
            params = self._params.get(operator, Counter())
            covered = 0
            top = []
            for (iterations, salt), param_count in params.most_common():
                top.append((param_count, iterations, salt))
                covered += param_count
                if count and covered / count >= params_coverage:
                    break
            rows.append(
                OperatorRow(
                    operator=operator,
                    domains=count,
                    share_pct=(
                        100.0 * count / self.nsec3_total if self.nsec3_total else 0.0
                    ),
                    top_params=top,
                )
            )
        rows.sort(key=lambda row: -row.domains)
        return rows[:top_n]


def operator_table(scan_results, top_n=10, params_coverage=0.999):
    """Build Table 2 from stage-2 scan results.

    Only *exclusively served* domains count (all NS targets under one
    registered domain), mirroring the paper. ``top_params`` lists the
    parameter settings covering ≥ *params_coverage* of the operator's
    domains.
    """
    accumulator = OperatorTableAccumulator()
    for result in scan_results:
        accumulator.update(result)
    return accumulator.rows(top_n, params_coverage)


def format_operator_table(rows):
    """Render rows in the paper's Table 2 layout."""
    lines = [
        f"{'Auth. name server operator':34s} {'# NSEC3 domains':>16s} "
        f"{'(%)':>6s}  iterations/salt-length"
    ]
    for row in rows:
        lines.append(
            f"{row.operator:34s} {row.domains:16d} {row.share_pct:6.1f}  "
            f"{row.params_text()}"
        )
    return "\n".join(lines)
