"""Table 2 regeneration: operator aggregation of NSEC3-enabled domains.

The paper processes the NS records of all NSEC3-enabled domains,
aggregates the NS targets by *registered domain* (even across public
suffixes), and reports the 10 operators that exclusively serve the most
domains, with each operator's dominant NSEC3 parameter settings.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass


def registered_domain(ns_target):
    """The registered domain of an NS target: its last two labels.

    Public-suffix handling in the real study is more involved; the
    synthetic namespace always uses two-label registrations.
    """
    labels = [l for l in ns_target.rstrip(".").split(".") if l]
    if len(labels) < 2:
        return ns_target.rstrip(".")
    return ".".join(labels[-2:]).lower()


@dataclass
class OperatorRow:
    """One row of Table 2."""

    operator: str
    domains: int
    share_pct: float
    #: Most common parameter settings: [(count, iterations, salt_length)].
    top_params: list

    def params_text(self):
        return ", ".join(f"{it}/{salt}" for __, it, salt in self.top_params)


def operator_table(scan_results, top_n=10, params_coverage=0.999):
    """Build Table 2 from stage-2 scan results.

    Only *exclusively served* domains count (all NS targets under one
    registered domain), mirroring the paper. ``top_params`` lists the
    parameter settings covering ≥ *params_coverage* of the operator's
    domains.
    """
    nsec3_results = [r for r in scan_results if r.nsec3_enabled]
    by_operator = defaultdict(list)
    for result in nsec3_results:
        operators = {registered_domain(t) for t in result.ns_targets}
        if len(operators) != 1:
            continue  # not exclusively served
        by_operator[next(iter(operators))].append(result)

    total = len(nsec3_results)
    rows = []
    for operator, results in by_operator.items():
        params = Counter(
            (r.report.iterations, r.report.salt_length) for r in results
        )
        ranked = params.most_common()
        covered = 0
        top = []
        for (iterations, salt), count in ranked:
            top.append((count, iterations, salt))
            covered += count
            if covered / len(results) >= params_coverage:
                break
        rows.append(
            OperatorRow(
                operator=operator,
                domains=len(results),
                share_pct=100.0 * len(results) / total if total else 0.0,
                top_params=top,
            )
        )
    rows.sort(key=lambda row: -row.domains)
    return rows[:top_n]


def format_operator_table(rows):
    """Render rows in the paper's Table 2 layout."""
    lines = [
        f"{'Auth. name server operator':34s} {'# NSEC3 domains':>16s} "
        f"{'(%)':>6s}  iterations/salt-length"
    ]
    for row in rows:
        lines.append(
            f"{row.operator:34s} {row.domains:16d} {row.share_pct:6.1f}  "
            f"{row.params_text()}"
        )
    return "\n".join(lines)
