"""Longitudinal view of NSEC3 parameter settings (the paper's future work).

§6 proposes tracking (i) NSEC3 prevalence among signed domains over time
and (ii) the iteration limits resolvers enforce. This module encodes the
*documented* timeline of parameter-setting events the paper cites and
projects the calibrated populations backwards and forwards across it:

- 2020-09: Identity Digital raises its 447 TLDs from 1 to 100 iterations;
- 2021:    BIND9/Knot/PowerDNS/Unbound start treating >150 iterations as
           insecure; authoritative defaults drop to 0 iterations;
           TransIP migrates 100 → 0;
- 2022-08: RFC 9276 published;
- 2023-12: CVE-2023-50868 patches lower resolver limits to 50
           (all major vendors except Unbound);
- 2024-03: the paper's measurement: 87.8 % of NSEC3 domains non-compliant;
- 2024-06: Identity Digital completes its 100 → 0 rollout (noted in §5.1).

Between events, adoption follows a simple lag model: a fixed fraction of
deployments applies the current defaults each year (operators re-sign
rarely; resolver operators upgrade slowly — the paper's conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    """One documented change in the ecosystem."""

    year: float
    actor: str
    description: str
    #: effects applied to the model state (key → new value or delta).
    effects: dict


TIMELINE = (
    TimelineEvent(
        2020.7,
        "Identity Digital",
        "raises 447 TLDs from 1 to 100 additional iterations",
        {"identity_digital_iterations": 100},
    ),
    TimelineEvent(
        2021.0,
        "resolver vendors",
        "BIND9/Knot/PowerDNS/Unbound return insecure above 150 iterations",
        {"vendor_limit": 150},
    ),
    TimelineEvent(
        2021.5,
        "TransIP",
        "migrates customer zones from 100 to 0 additional iterations",
        {"transip_iterations": 0},
    ),
    TimelineEvent(
        2021.9,
        "authoritative vendors",
        "BIND9/PowerDNS/Knot default new zones to 0 iterations, no salt",
        {"signing_default_iterations": 0},
    ),
    TimelineEvent(
        2022.6,
        "IETF",
        "RFC 9276 published: iterations MUST be 0, salt SHOULD NOT be used",
        {"bcp_published": True},
    ),
    TimelineEvent(
        2023.95,
        "resolver vendors",
        "CVE-2023-50868 patches lower the limit to 50 (except Unbound)",
        {"vendor_limit": 50},
    ),
    TimelineEvent(
        2024.2,
        "this paper",
        "measurement: 87.8 % of NSEC3-enabled domains non-compliant",
        {},
    ),
    TimelineEvent(
        2024.5,
        "Identity Digital",
        "completes the 100 → 0 iteration rollout on its TLDs",
        {"identity_digital_iterations": 0},
    ),
)


@dataclass
class YearState:
    """Modelled ecosystem state for one year."""

    year: float
    #: Share of NSEC3-enabled domains with zero additional iterations.
    zero_iteration_share: float
    #: Share of signed domains using NSEC3 (vs NSEC).
    nsec3_share: float
    #: The dominant resolver iteration limit shipped by vendors.
    vendor_limit: int | None
    #: Share of deployed resolvers actually enforcing any limit.
    resolver_limit_adoption: float
    events: list = field(default_factory=list)


#: Annual fraction of zones re-signed under current vendor defaults.
#: Calibrated so the modelled zero-iteration share at the paper's
#: measurement point (2024.2) lands on the measured 12.2 %.
ZONE_REFRESH_RATE = 0.02
#: Annual fraction of resolver deployments picking up vendor limits.
RESOLVER_UPGRADE_RATE = 0.35


def compliance_timeline(
    start=2019.0,
    end=2026.0,
    step=1.0,
    initial_zero_share=0.05,
    initial_nsec3_share=0.62,
):
    """Project the compliance trajectory across the documented timeline.

    Returns a list of :class:`YearState`. Calibrated so that the state at
    2024.2 reproduces the paper's 12.2 % zero-iteration share, and shaped
    by the same mechanism the paper identifies: defaults only reach zones
    when operators re-sign, so adoption lags vendor changes by years.
    """
    states = []
    zero_share = initial_zero_share
    nsec3_share = initial_nsec3_share
    vendor_limit = None
    signing_default_zero = False
    limit_adoption = 0.0
    year = start
    pending = sorted(TIMELINE, key=lambda e: e.year)
    index = 0
    while year <= end + 1e-9:
        fired = []
        while index < len(pending) and pending[index].year <= year:
            event = pending[index]
            fired.append(event)
            if event.effects.get("signing_default_iterations") == 0:
                signing_default_zero = True
            if "vendor_limit" in event.effects:
                vendor_limit = event.effects["vendor_limit"]
                limit_adoption = max(limit_adoption, 0.05)
            if event.effects.get("identity_digital_iterations") == 0:
                zero_share = min(1.0, zero_share + 0.02)
            if event.effects.get("transip_iterations") == 0:
                zero_share = min(1.0, zero_share + 0.035)
            index += 1
        if signing_default_zero:
            zero_share += (1.0 - zero_share) * ZONE_REFRESH_RATE
        if vendor_limit is not None:
            limit_adoption += (0.783 - limit_adoption) * RESOLVER_UPGRADE_RATE
        nsec3_share += (0.55 - nsec3_share) * 0.02  # slow drift toward NSEC
        states.append(
            YearState(
                year=round(year, 2),
                zero_iteration_share=round(zero_share, 4),
                nsec3_share=round(nsec3_share, 4),
                vendor_limit=vendor_limit,
                resolver_limit_adoption=round(min(limit_adoption, 0.99), 4),
                events=fired,
            )
        )
        year += step
    return states


def paper_anchor(states):
    """The modelled state closest to the paper's March-2024 measurement."""
    return min(states, key=lambda s: abs(s.year - 2024.2))
