"""Result serialisation: zdns-style JSONL and figure CSVs.

The real pipeline's glue is files: zdns emits JSON lines, the analysis
notebooks read them, and the figures are plotted from CSV series. This
module provides the same seams so downstream users can run the scan once
and analyse offline:

- :func:`domain_results_to_jsonl` / :func:`domain_results_from_jsonl` —
  lossless round-trip of stage-2 scan results;
- :func:`classifications_to_jsonl` / :func:`classifications_from_jsonl` —
  resolver survey classifications;
- :func:`figure_to_csv` — any figure series as CSV text.
"""

from __future__ import annotations

import json

from repro.core.resolver_compliance import ResolverClassification
from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance
from repro.scanner.nsec3_scan import DomainScanResult


def _params_to_json(params):
    return [
        {"algorithm": alg, "iterations": iterations, "salt": salt.hex()}
        for alg, iterations, salt in params
    ]


def _params_from_json(entries):
    return tuple(
        (entry["algorithm"], entry["iterations"], bytes.fromhex(entry["salt"]))
        for entry in entries
    )


def domain_result_to_dict(result):
    """One stage-2 result as a JSON-serialisable dict (zdns-style record)."""
    observation = result.observation
    record = {
        "domain": result.domain,
        "denial": result.denial,
        "ns_targets": list(result.ns_targets),
        "observation": None,
    }
    if observation is not None:
        record["observation"] = {
            "dnssec_enabled": observation.dnssec_enabled,
            "nsec3param_records": _params_to_json(observation.nsec3param_records),
            "nsec3_records": _params_to_json(observation.nsec3_records),
            "opt_out_seen": observation.opt_out_seen,
            "delegation_count": observation.delegation_count,
            "zone_published_openly": observation.zone_published_openly,
        }
    return record


def domain_result_from_dict(record):
    """Rebuild a result (reports are recomputed, not stored)."""
    result = DomainScanResult(domain=record["domain"])
    result.denial = record.get("denial", "")
    result.ns_targets = tuple(record.get("ns_targets", ()))
    observation = record.get("observation")
    if observation is not None:
        result.observation = Nsec3Observation(
            domain=record["domain"],
            dnssec_enabled=observation["dnssec_enabled"],
            nsec3param_records=_params_from_json(observation["nsec3param_records"]),
            nsec3_records=_params_from_json(observation["nsec3_records"]),
            opt_out_seen=observation["opt_out_seen"],
            delegation_count=observation["delegation_count"],
            zone_published_openly=observation["zone_published_openly"],
        )
        result.report = check_zone_compliance(result.observation)
    return result


def domain_results_to_jsonl(results):
    """All results as JSON-lines text."""
    return "\n".join(
        json.dumps(domain_result_to_dict(result), sort_keys=True)
        for result in results
    )


def domain_results_from_jsonl(text):
    """Parse JSON-lines text back into scan results."""
    return [
        domain_result_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def classification_to_dict(cls):
    """One resolver classification as a JSON-serialisable dict."""
    return {
        "resolver": cls.resolver,
        "is_validating": cls.is_validating,
        "limits_iterations": cls.limits_iterations,
        "implements_item6": cls.implements_item6,
        "insecure_threshold": cls.insecure_threshold,
        "implements_item8": cls.implements_item8,
        "servfail_threshold": cls.servfail_threshold,
        "ede27_support": cls.ede27_support,
        "item7_violation": cls.item7_violation,
        "item12_gap": cls.item12_gap,
        "notes": list(cls.notes),
    }


def classification_from_dict(record):
    """Rebuild a classification from its dict form."""
    return ResolverClassification(
        resolver=record.get("resolver", ""),
        is_validating=record["is_validating"],
        limits_iterations=record["limits_iterations"],
        implements_item6=record["implements_item6"],
        insecure_threshold=record["insecure_threshold"],
        implements_item8=record["implements_item8"],
        servfail_threshold=record["servfail_threshold"],
        ede27_support=record["ede27_support"],
        item7_violation=record["item7_violation"],
        item12_gap=record["item12_gap"],
        notes=list(record.get("notes", [])),
    )


def classifications_to_jsonl(classifications):
    """All classifications as JSON-lines text."""
    return "\n".join(
        json.dumps(classification_to_dict(cls), sort_keys=True)
        for cls in classifications
    )


def classifications_from_jsonl(text):
    """Parse JSON-lines text back into classifications."""
    return [
        classification_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def figure_to_csv(header, rows):
    """Render a figure series as CSV text (no quoting needed: numbers only)."""
    lines = [",".join(header)]
    for row in rows:
        lines.append(
            ",".join(
                f"{value:.4f}" if isinstance(value, float) else str(value)
                for value in row
            )
        )
    return "\n".join(lines)


def figure1_csv(figure1, xs=(0, 1, 2, 5, 8, 10, 16, 25, 50, 100, 150, 500)):
    """Figure 1's two CDFs as CSV evaluated on the grid *xs*."""
    return figure_to_csv(
        ("x", "iterations_at_or_below_pct", "salt_at_or_below_pct"),
        figure1.rows(xs),
    )


def figure3_csv(figure3):
    """One Figure 3 subfigure as CSV."""
    return figure_to_csv(
        ("iterations", "nxdomain_pct", "ad_nxdomain_pct", "servfail_pct"),
        figure3.rows(),
    )
