"""Streaming sketches: bounded-memory summaries for paper-scale streams.

The paper's population is 302 M domains; holding per-domain records to
compute marginals does not scale. Everything the §5 analyses actually
report is expressible over three streaming primitives:

- :class:`StreamStats` — count/min/max/sum moments in O(1);
- :class:`SpaceSavingTopK` — the Metwally et al. space-saving heavy
  hitters sketch: exact whenever the true cardinality fits the capacity
  (our operator universe does), graceful overestimates beyond it;
- :class:`QuantileSketch` — a Greenwald–Khanna quantile summary with a
  deterministic rank-error bound of ``eps * n``.

All three are deterministic functions of the update sequence (no
randomisation, no hash seeding), so shard merges and resumed campaigns
reproduce byte-identical downstream reports.
"""

from __future__ import annotations

import bisect
import math


class StreamStats:
    """Count / min / max / sum / mean of a numeric stream, in O(1)."""

    __slots__ = ("count", "minimum", "maximum", "total")

    def __init__(self):
        self.count = 0
        self.minimum = None
        self.maximum = None
        self.total = 0

    def update(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        return self

    def merge(self, other):
        """Fold another :class:`StreamStats` into this one."""
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if self.minimum is None or other.minimum < self.minimum:
            self.minimum = other.minimum
        if self.maximum is None or other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def __len__(self):
        return self.count


class SpaceSavingTopK:
    """Space-saving heavy-hitters counter (Metwally et al., 2005).

    Tracks at most *capacity* distinct keys. While the true cardinality
    stays within capacity every count is **exact** and first-seen
    insertion order is preserved (the property the operator-table
    renderer relies on for stable tie-breaks). Past capacity, the
    minimum-count key is evicted and the newcomer inherits its count as
    an overestimation bound, kept in :attr:`errors`.
    """

    def __init__(self, capacity=4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: key -> count (insertion-ordered; evictions replace in place).
        self.counts = {}
        #: key -> maximum overestimation of its count (0 = exact).
        self.errors = {}
        #: Number of evictions performed; 0 means all counts are exact.
        self.evictions = 0

    def update(self, key, count=1):
        if key in self.counts:
            self.counts[key] += count
            return self
        if len(self.counts) < self.capacity:
            self.counts[key] = count
            self.errors[key] = 0
            return self
        # Evict the minimum-count key; ties resolve to the earliest
        # inserted (dict iteration order), keeping the sketch
        # deterministic for a given update sequence.
        victim = min(self.counts, key=self.counts.__getitem__)
        floor = self.counts.pop(victim)
        self.errors.pop(victim)
        self.counts[key] = floor + count
        self.errors[key] = floor
        self.evictions += 1
        return self

    def top(self, n=None):
        """[(key, count, max_error)] sorted by count desc, stable."""
        ranked = sorted(
            self.counts.items(), key=lambda item: item[1], reverse=True
        )
        if n is not None:
            ranked = ranked[:n]
        return [(key, count, self.errors[key]) for key, count in ranked]

    @property
    def exact(self):
        """True while no eviction has occurred (all counts exact)."""
        return self.evictions == 0

    def __len__(self):
        return len(self.counts)

    def __contains__(self, key):
        return key in self.counts


class _GkEntry:
    __slots__ = ("value", "g", "delta")

    def __init__(self, value, g, delta):
        self.value = value
        self.g = g
        self.delta = delta


class QuantileSketch:
    """Greenwald–Khanna quantile summary with rank error ``<= eps * n``.

    ``query(phi)`` returns a sample whose rank is within ``eps * n`` of
    ``phi * n``. The summary keeps O(1/eps * log(eps * n)) entries and is
    a deterministic function of the insertion order — shards that replay
    the same sub-stream rebuild the identical summary.
    """

    def __init__(self, eps=0.005):
        if not 0.0 < eps < 0.5:
            raise ValueError("eps must be in (0, 0.5)")
        self.eps = eps
        self.n = 0
        self._entries = []
        self._values = []  # parallel sorted values for bisect
        self._compress_every = max(1, int(1.0 / (2.0 * eps)))
        self._since_compress = 0

    def update(self, value):
        threshold = math.floor(2.0 * self.eps * self.n)
        position = bisect.bisect_right(self._values, value)
        if position == 0 or position == len(self._entries):
            entry = _GkEntry(value, 1, 0)  # new min/max: exact rank
        else:
            entry = _GkEntry(value, 1, threshold)
        self._entries.insert(position, entry)
        self._values.insert(position, value)
        self.n += 1
        self._since_compress += 1
        if self._since_compress >= self._compress_every:
            self._compress()
            self._since_compress = 0
        return self

    def _compress(self):
        threshold = math.floor(2.0 * self.eps * self.n)
        entries = self._entries
        index = len(entries) - 2
        while index >= 1:
            current, nxt = entries[index], entries[index + 1]
            if current.g + nxt.g + nxt.delta <= threshold:
                nxt.g += current.g
                del entries[index]
                del self._values[index]
            index -= 1

    def query(self, fraction):
        """A value whose rank is within ``eps * n`` of ``fraction * n``."""
        if not self._entries:
            raise ValueError("empty sketch")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        target = max(1, math.ceil(fraction * self.n))
        margin = math.floor(self.eps * self.n)
        rank_min = 0
        for index, entry in enumerate(self._entries):
            rank_min += entry.g
            rank_max = rank_min + entry.delta
            if rank_min >= target - margin and rank_max <= target + margin:
                return entry.value
            if rank_max > target + margin:
                return self._entries[max(0, index - 1)].value
        return self._entries[-1].value

    def __len__(self):
        return self.n

    @property
    def retained(self):
        """Number of summary entries currently held (the memory bound)."""
        return len(self._entries)
