"""Headline statistics — the numbers quoted in the paper's §5 prose."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resolver_compliance import summarize as summarize_resolvers
from repro.core.zone_compliance import summarize as summarize_zones


def _pct(part, whole):
    return 100.0 * part / whole if whole else 0.0


@dataclass
class DomainHeadline:
    """§5.1 headline numbers, computed from scan results."""

    total_domains: int
    dnssec_enabled: int
    nsec3_enabled: int
    zero_iterations: int
    no_salt: int
    both_compliant: int
    opt_out: int
    max_iterations: int
    over_150_iterations: int

    @property
    def dnssec_pct(self):
        return _pct(self.dnssec_enabled, self.total_domains)

    @property
    def nsec3_given_dnssec_pct(self):
        return _pct(self.nsec3_enabled, self.dnssec_enabled)

    @property
    def zero_iterations_pct(self):
        return _pct(self.zero_iterations, self.nsec3_enabled)

    @property
    def non_compliant_pct(self):
        """The paper's 87.8 %: NSEC3-enabled domains failing Item 2."""
        return 100.0 - self.zero_iterations_pct

    @property
    def no_salt_pct(self):
        return _pct(self.no_salt, self.nsec3_enabled)

    @property
    def opt_out_pct(self):
        return _pct(self.opt_out, self.nsec3_enabled)

    def rows(self):
        """(label, paper value, measured value) rows for reports."""
        return [
            ("DNSSEC-enabled / registered (%)", 8.8, round(self.dnssec_pct, 1)),
            ("NSEC3-enabled / DNSSEC (%)", 58.9, round(self.nsec3_given_dnssec_pct, 1)),
            ("zero additional iterations (%)", 12.2, round(self.zero_iterations_pct, 1)),
            ("non-compliant with Item 2 (%)", 87.8, round(self.non_compliant_pct, 1)),
            ("no salt (%)", 8.6, round(self.no_salt_pct, 1)),
            ("opt-out flag set (%)", 6.4, round(self.opt_out_pct, 1)),
            ("max additional iterations", 500, self.max_iterations),
        ]


def domain_headline_stats(scan_results, total_domains, dnssec_enabled=None):
    """Compute §5.1 headlines from stage-2 scan results.

    *total_domains* is the size of the registered-domain universe the scan
    started from (the 302 M equivalent); *dnssec_enabled* defaults to the
    number of scanned domains (stage 1 output).
    """
    reports = [r.report for r in scan_results if r.report is not None]
    totals = summarize_zones(reports)
    iteration_values = [
        r.report.iterations
        for r in scan_results
        if r.nsec3_enabled and r.report.iterations is not None
    ]
    return DomainHeadline(
        total_domains=total_domains,
        dnssec_enabled=dnssec_enabled if dnssec_enabled is not None else len(scan_results),
        nsec3_enabled=totals["nsec3_enabled"],
        zero_iterations=totals["item2_compliant"],
        no_salt=totals["item3_compliant"],
        both_compliant=totals["both_compliant"],
        opt_out=totals["opt_out"],
        max_iterations=max(iteration_values, default=0),
        over_150_iterations=sum(1 for v in iteration_values if v > 150),
    )


@dataclass
class ResolverHeadline:
    """§5.2 headline numbers, computed from resolver classifications."""

    resolvers_probed: int
    validators: int
    limit_iterations: int
    item6: int
    item8: int
    servfail_at_one: int
    ede27: int
    item7_violations: int
    item12_gaps: int

    @property
    def limit_pct(self):
        return _pct(self.limit_iterations, self.validators)

    @property
    def item6_pct(self):
        return _pct(self.item6, self.validators)

    @property
    def item8_pct(self):
        return _pct(self.item8, self.validators)

    @property
    def ede27_pct(self):
        return _pct(self.ede27, self.limit_iterations)

    @property
    def item7_violation_pct(self):
        return _pct(self.item7_violations, self.item6)

    @property
    def item12_gap_pct(self):
        return _pct(self.item12_gaps, self.validators)

    def rows(self):
        return [
            ("validators limiting iterations (%)", 78.3, round(self.limit_pct, 1)),
            ("Item 6: insecure above a limit (%)", 59.9, round(self.item6_pct, 1)),
            ("Item 8: SERVFAIL above a limit (%)", 18.4, round(self.item8_pct, 1)),
            ("SERVFAIL from it-1 (count)", 418, self.servfail_at_one),
            ("EDE 27 among limiters (%)", 18.0, round(self.ede27_pct, 1)),
            ("Item 7 violations (%)", 0.2, round(self.item7_violation_pct, 1)),
            ("Item 12 gaps (%)", 4.3, round(self.item12_gap_pct, 1)),
        ]


def resolver_headline_stats(classifications):
    """Compute §5.2 headlines from a set of resolver classifications."""
    totals = summarize_resolvers(classifications)
    return ResolverHeadline(
        resolvers_probed=totals["resolvers"],
        validators=totals["validating"],
        limit_iterations=totals["limit_iterations"],
        item6=totals["item6"],
        item8=totals["item8"],
        servfail_at_one=totals["servfail_at_one"],
        ede27=totals["ede27"],
        item7_violations=totals["item7_violations"],
        item12_gaps=totals["item12_gaps"],
    )
