"""Headline statistics — the numbers quoted in the paper's §5 prose.

Both headline computations exist in two equivalent forms: the original
list-at-once functions (:func:`domain_headline_stats`,
:func:`resolver_headline_stats`) and ``update(record)``-style
accumulators (:class:`DomainHeadlineAccumulator`,
:class:`ResolverHeadlineAccumulator`) that fold results as they arrive
in O(1) memory. The list forms are thin wrappers over the accumulators,
so the streamed and materialised paths literally share the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sketch import StreamStats


def _pct(part, whole):
    return 100.0 * part / whole if whole else 0.0


@dataclass
class DomainHeadline:
    """§5.1 headline numbers, computed from scan results."""

    total_domains: int
    dnssec_enabled: int
    nsec3_enabled: int
    zero_iterations: int
    no_salt: int
    both_compliant: int
    opt_out: int
    max_iterations: int
    over_150_iterations: int

    @property
    def dnssec_pct(self):
        return _pct(self.dnssec_enabled, self.total_domains)

    @property
    def nsec3_given_dnssec_pct(self):
        return _pct(self.nsec3_enabled, self.dnssec_enabled)

    @property
    def zero_iterations_pct(self):
        return _pct(self.zero_iterations, self.nsec3_enabled)

    @property
    def non_compliant_pct(self):
        """The paper's 87.8 %: NSEC3-enabled domains failing Item 2."""
        return 100.0 - self.zero_iterations_pct

    @property
    def no_salt_pct(self):
        return _pct(self.no_salt, self.nsec3_enabled)

    @property
    def opt_out_pct(self):
        return _pct(self.opt_out, self.nsec3_enabled)

    def rows(self):
        """(label, paper value, measured value) rows for reports."""
        return [
            ("DNSSEC-enabled / registered (%)", 8.8, round(self.dnssec_pct, 1)),
            ("NSEC3-enabled / DNSSEC (%)", 58.9, round(self.nsec3_given_dnssec_pct, 1)),
            ("zero additional iterations (%)", 12.2, round(self.zero_iterations_pct, 1)),
            ("non-compliant with Item 2 (%)", 87.8, round(self.non_compliant_pct, 1)),
            ("no salt (%)", 8.6, round(self.no_salt_pct, 1)),
            ("opt-out flag set (%)", 6.4, round(self.opt_out_pct, 1)),
            ("max additional iterations", 500, self.max_iterations),
        ]


class DomainHeadlineAccumulator:
    """Fold stage-2 scan results into §5.1 headline counters, one at a
    time — the streaming front-end of :func:`domain_headline_stats`.

    Mirrors :func:`repro.core.zone_compliance.summarize` counter for
    counter so the folded headline equals the list-at-once one exactly.
    """

    def __init__(self):
        self.results_seen = 0
        self.nsec3_enabled = 0
        self.zero_iterations = 0
        self.no_salt = 0
        self.both_compliant = 0
        self.opt_out = 0
        self.over_150_iterations = 0
        self.iterations = StreamStats()

    def update(self, result):
        self.results_seen += 1
        report = result.report
        if report is None or not report.nsec3_enabled:
            return self
        self.nsec3_enabled += 1
        self.zero_iterations += report.item2_zero_iterations
        self.no_salt += report.item3_no_salt
        self.both_compliant += report.rfc9276_compliant
        self.opt_out += report.opt_out
        if report.iterations is not None:
            self.iterations.update(report.iterations)
            self.over_150_iterations += report.iterations > 150
        return self

    def headline(self, total_domains, dnssec_enabled=None):
        return DomainHeadline(
            total_domains=total_domains,
            dnssec_enabled=(
                dnssec_enabled if dnssec_enabled is not None else self.results_seen
            ),
            nsec3_enabled=self.nsec3_enabled,
            zero_iterations=self.zero_iterations,
            no_salt=self.no_salt,
            both_compliant=self.both_compliant,
            opt_out=self.opt_out,
            max_iterations=(
                self.iterations.maximum if self.iterations.count else 0
            ),
            over_150_iterations=self.over_150_iterations,
        )


def domain_headline_stats(scan_results, total_domains, dnssec_enabled=None):
    """Compute §5.1 headlines from stage-2 scan results.

    *total_domains* is the size of the registered-domain universe the scan
    started from (the 302 M equivalent); *dnssec_enabled* defaults to the
    number of scanned domains (stage 1 output).
    """
    accumulator = DomainHeadlineAccumulator()
    for result in scan_results:
        accumulator.update(result)
    return accumulator.headline(total_domains, dnssec_enabled)


@dataclass
class ResolverHeadline:
    """§5.2 headline numbers, computed from resolver classifications."""

    resolvers_probed: int
    validators: int
    limit_iterations: int
    item6: int
    item8: int
    servfail_at_one: int
    ede27: int
    item7_violations: int
    item12_gaps: int

    @property
    def limit_pct(self):
        return _pct(self.limit_iterations, self.validators)

    @property
    def item6_pct(self):
        return _pct(self.item6, self.validators)

    @property
    def item8_pct(self):
        return _pct(self.item8, self.validators)

    @property
    def ede27_pct(self):
        return _pct(self.ede27, self.limit_iterations)

    @property
    def item7_violation_pct(self):
        return _pct(self.item7_violations, self.item6)

    @property
    def item12_gap_pct(self):
        return _pct(self.item12_gaps, self.validators)

    def rows(self):
        return [
            ("validators limiting iterations (%)", 78.3, round(self.limit_pct, 1)),
            ("Item 6: insecure above a limit (%)", 59.9, round(self.item6_pct, 1)),
            ("Item 8: SERVFAIL above a limit (%)", 18.4, round(self.item8_pct, 1)),
            ("SERVFAIL from it-1 (count)", 418, self.servfail_at_one),
            ("EDE 27 among limiters (%)", 18.0, round(self.ede27_pct, 1)),
            ("Item 7 violations (%)", 0.2, round(self.item7_violation_pct, 1)),
            ("Item 12 gaps (%)", 4.3, round(self.item12_gap_pct, 1)),
        ]


class ResolverHeadlineAccumulator:
    """Fold resolver classifications into §5.2 headline counters — the
    streaming front-end of :func:`resolver_headline_stats`. Mirrors
    :func:`repro.core.resolver_compliance.summarize` exactly.
    """

    def __init__(self):
        self.resolvers = 0
        self.validating = 0
        self.limit_iterations = 0
        self.item6 = 0
        self.item8 = 0
        self.servfail_at_one = 0
        self.ede27 = 0
        self.item7_violations = 0
        self.item12_gaps = 0

    def update(self, classification):
        self.resolvers += 1
        if not classification.is_validating:
            return self
        self.validating += 1
        self.limit_iterations += classification.limits_iterations
        self.item6 += classification.implements_item6
        self.item8 += classification.implements_item8
        self.servfail_at_one += classification.strict_servfail_at_one
        self.ede27 += classification.ede27_support
        self.item7_violations += classification.item7_violation
        self.item12_gaps += classification.item12_gap
        return self

    def headline(self):
        return ResolverHeadline(
            resolvers_probed=self.resolvers,
            validators=self.validating,
            limit_iterations=self.limit_iterations,
            item6=self.item6,
            item8=self.item8,
            servfail_at_one=self.servfail_at_one,
            ede27=self.ede27,
            item7_violations=self.item7_violations,
            item12_gaps=self.item12_gaps,
        )


def resolver_headline_stats(classifications):
    """Compute §5.2 headlines from a set of resolver classifications."""
    accumulator = ResolverHeadlineAccumulator()
    for classification in classifications:
        accumulator.update(classification)
    return accumulator.headline()
