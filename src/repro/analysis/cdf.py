"""Empirical cumulative distribution functions for the figures.

Two implementations share one read API:

- :class:`Cdf` — the exact, materialised form (sorts its samples);
- :class:`StreamingCdf` — an ``update(value)``-style incremental form
  holding one counter per *distinct* value, so memory is O(distinct)
  rather than O(samples). For the discrete axes the paper plots
  (iteration counts, salt lengths, rank buckets) the two are exactly
  equal — same integer arithmetic, same float divisions — which is what
  lets the streamed study report stay byte-identical to the
  materialised one.
"""

from __future__ import annotations

import bisect
import math


class Cdf:
    """An empirical CDF over numeric samples."""

    def __init__(self, samples):
        self.samples = sorted(samples)

    def __len__(self):
        return len(self.samples)

    def fraction_at_or_below(self, value):
        """P(X ≤ value), in [0, 1]."""
        if not self.samples:
            return 0.0
        return bisect.bisect_right(self.samples, value) / len(self.samples)

    def percentile(self, fraction):
        """The smallest sample x with P(X ≤ x) ≥ fraction."""
        if not self.samples:
            raise ValueError("empty CDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rank = math.ceil(fraction * len(self.samples))
        return self.samples[max(0, rank - 1)]

    def points(self, max_points=None):
        """(x, P(X ≤ x)) step points suitable for plotting or tabulation."""
        points = []
        n = len(self.samples)
        previous = object()
        for index, value in enumerate(self.samples, start=1):
            if value != previous:
                points.append((value, index / n))
                previous = value
            else:
                points[-1] = (value, index / n)
        return _downsample(points, max_points)

    def series_at(self, xs):
        """The CDF evaluated at each x in *xs* (for fixed-grid tables)."""
        return [(x, self.fraction_at_or_below(x)) for x in xs]


def _downsample(points, max_points):
    """Thin step points to *max_points*, always retaining the final
    ``(max, 1.0)`` step — plain strided indexing drops it, which used to
    truncate every downsampled curve short of 100 %."""
    if max_points is None or len(points) <= max_points:
        return points
    step = len(points) / max_points
    sampled = [points[int(i * step)] for i in range(max_points)]
    sampled[-1] = points[-1]
    return sampled


class StreamingCdf:
    """An exact CDF built incrementally: one counter per distinct value.

    Reads mirror :class:`Cdf` bit-for-bit: ``fraction_at_or_below`` does
    the same ``count / n`` division, ``percentile`` picks the same
    sample. ``update`` is O(log distinct) (sorted-insert on first sight
    of a value, dict increment afterwards).
    """

    def __init__(self, samples=()):
        self._counts = {}
        self._sorted = []  # distinct values, ascending
        self._cumulative = None  # cache: cumulative counts per distinct
        self.n = 0
        for value in samples:
            self.update(value)

    def update(self, value):
        if value in self._counts:
            self._counts[value] += 1
        else:
            self._counts[value] = 1
            bisect.insort(self._sorted, value)
        self.n += 1
        self._cumulative = None
        return self

    def merge(self, other):
        """Fold another :class:`StreamingCdf` into this one."""
        for value, count in other._counts.items():
            if value in self._counts:
                self._counts[value] += count
            else:
                self._counts[value] = count
                bisect.insort(self._sorted, value)
        self.n += other.n
        self._cumulative = None
        return self

    def _cumulative_counts(self):
        if self._cumulative is None:
            total = 0
            cumulative = []
            for value in self._sorted:
                total += self._counts[value]
                cumulative.append(total)
            self._cumulative = cumulative
        return self._cumulative

    def __len__(self):
        return self.n

    def fraction_at_or_below(self, value):
        """P(X ≤ value), equal to :meth:`Cdf.fraction_at_or_below`."""
        if not self.n:
            return 0.0
        position = bisect.bisect_right(self._sorted, value)
        if position == 0:
            return 0.0
        return self._cumulative_counts()[position - 1] / self.n

    def percentile(self, fraction):
        """The smallest sample x with P(X ≤ x) ≥ fraction."""
        if not self.n:
            raise ValueError("empty CDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rank = max(1, math.ceil(fraction * self.n))
        position = bisect.bisect_left(self._cumulative_counts(), rank)
        return self._sorted[position]

    def points(self, max_points=None):
        """(x, P(X ≤ x)) step points, one per distinct value."""
        cumulative = self._cumulative_counts()
        points = [
            (value, cumulative[index] / self.n)
            for index, value in enumerate(self._sorted)
        ]
        return _downsample(points, max_points)

    def series_at(self, xs):
        """The CDF evaluated at each x in *xs* (for fixed-grid tables)."""
        return [(x, self.fraction_at_or_below(x)) for x in xs]

    @property
    def samples(self):
        """The sorted sample multiset, materialised on demand.

        O(n) memory — provided for compatibility with exact-:class:`Cdf`
        consumers (benchmarks); the streaming pipeline never calls it.
        """
        out = []
        for value in self._sorted:
            out.extend([value] * self._counts[value])
        return out
