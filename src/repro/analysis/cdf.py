"""Empirical cumulative distribution functions for the figures."""

from __future__ import annotations

import bisect
import math


class Cdf:
    """An empirical CDF over numeric samples."""

    def __init__(self, samples):
        self.samples = sorted(samples)

    def __len__(self):
        return len(self.samples)

    def fraction_at_or_below(self, value):
        """P(X ≤ value), in [0, 1]."""
        if not self.samples:
            return 0.0
        return bisect.bisect_right(self.samples, value) / len(self.samples)

    def percentile(self, fraction):
        """The smallest sample x with P(X ≤ x) ≥ fraction."""
        if not self.samples:
            raise ValueError("empty CDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rank = math.ceil(fraction * len(self.samples))
        return self.samples[max(0, rank - 1)]

    def points(self, max_points=None):
        """(x, P(X ≤ x)) step points suitable for plotting or tabulation."""
        points = []
        n = len(self.samples)
        previous = object()
        for index, value in enumerate(self.samples, start=1):
            if value != previous:
                points.append((value, index / n))
                previous = value
            else:
                points[-1] = (value, index / n)
        if max_points is not None and len(points) > max_points:
            step = len(points) / max_points
            points = [points[int(i * step)] for i in range(max_points)]
        return points

    def series_at(self, xs):
        """The CDF evaluated at each x in *xs* (for fixed-grid tables)."""
        return [(x, self.fraction_at_or_below(x)) for x in xs]
