"""The synthetic Internet testbed.

Builds everything the paper's measurements ran against, calibrated to the
published marginals so the analysis pipelines regenerate the same shapes:

- :mod:`repro.testbed.operators` — Table 2 operator profiles;
- :mod:`repro.testbed.population` — the registered-domain population and
  the TLD population (§5.1 calibration);
- :mod:`repro.testbed.tranco` — a synthetic popularity ranking (Figure 2);
- :mod:`repro.testbed.internet` — assembles root, TLD and domain zones on
  a simulated network with per-operator authoritative servers;
- :mod:`repro.testbed.rfc9276_wild` — the 49 probe zones of §4.2;
- :mod:`repro.testbed.resolvers` — the open/closed resolver population
  with vendor-policy mixture (Figure 3 calibration).
"""

from repro.testbed.operators import OPERATORS, OperatorProfile
from repro.testbed.population import (
    DomainSpec,
    Population,
    PopulationConfig,
    TldSpec,
    generate_population,
    generate_tlds,
    iter_population,
    population_size,
)
from repro.testbed.internet import Internet, build_internet
from repro.testbed.rfc9276_wild import ProbeZoneSet, build_probe_zones
from repro.testbed.resolvers import DeployedResolver, ResolverMixture, deploy_resolvers
from repro.testbed.tranco import assign_tranco_ranks
from repro.testbed.sources import curate_domain_list, enable_paper_axfr

__all__ = [
    "OPERATORS",
    "OperatorProfile",
    "DomainSpec",
    "TldSpec",
    "Population",
    "PopulationConfig",
    "generate_population",
    "generate_tlds",
    "iter_population",
    "population_size",
    "Internet",
    "build_internet",
    "ProbeZoneSet",
    "build_probe_zones",
    "DeployedResolver",
    "ResolverMixture",
    "deploy_resolvers",
    "assign_tranco_ranks",
    "curate_domain_list",
    "enable_paper_axfr",
]
