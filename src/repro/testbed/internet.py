"""Assembles the simulated Internet: root, TLDs, domains, operators.

Every zone is genuinely DNSSEC-signed (per its spec) and hosted on an
authoritative server attached to the simulated network, so the scanners in
:mod:`repro.scanner` measure real protocol behaviour end to end.

Key material comes from a seeded RSA-512 pool: RSA verification is two
orders of magnitude cheaper than signing in pure Python, which matches the
asymmetry real resolvers enjoy via OpenSSL and keeps large testbeds fast.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.crypto.keys import ALG_RSASHA256, KeyPair, generate_keypair, make_ds
from repro.crypto.rsa import RsaPrivateKey
from repro.dns.name import Name
from repro.dns.rdata import NS
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.net.address import AddressAllocator
from repro.net.network import Network
from repro.obs.metrics import ChildCache
from repro.resolver.policy import Nsec3Policy
from repro.resolver.validating import ValidatingResolver
from repro.server.authoritative import AuthoritativeServer
from repro.testbed.operators import OPERATORS_BY_KEY
from repro.zone import build_cache
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone


class KeyPool:
    """A pool of pre-generated signing keys, cycled across zones.

    Sharing keys across synthetic zones collapses key-generation cost from
    O(zones) to O(1) while leaving every signature and validation real.
    Real operators do reuse infrastructure-wide keys far less aggressively;
    nothing in the measured behaviour depends on key uniqueness.
    """

    def __init__(self, size=16, algorithm=ALG_RSASHA256, rsa_bits=512, seed=42):
        rng = random.Random(seed)
        self._ksks = [
            generate_keypair(algorithm, ksk=True, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._zsks = [
            generate_keypair(algorithm, ksk=False, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._index = 0

    def next_pair(self):
        ksk = self._ksks[self._index % len(self._ksks)]
        zsk = self._zsks[self._index % len(self._zsks)]
        self._index += 1
        return ksk, zsk

    def pair_for(self, name):
        """The pool pair owned by *name* — stable, order-independent.

        Keying on CRC32 of the zone name (never Python's salted
        ``hash()``) means a zone built lazily on first query draws the
        same keys it would have drawn in an eager build, so both paths
        sign byte-identical zones.
        """
        index = zlib.crc32(str(name).rstrip(".").lower().encode("ascii"))
        return (
            self._ksks[index % len(self._ksks)],
            self._zsks[index % len(self._zsks)],
        )

    def material(self):
        """The pool's RSA key material as a JSON-serialisable document.

        Only defined for RSA pools (the only kind the testbed uses);
        CRT factors are included so a rebuilt pool signs at full speed.
        """
        return {
            "ksks": [_key_material(key) for key in self._ksks],
            "zsks": [_key_material(key) for key in self._zsks],
        }

    @classmethod
    def from_material(cls, material):
        """Rebuild a pool from :meth:`material` without any keygen."""
        pool = cls.__new__(cls)
        pool._ksks = [_key_from_material(doc) for doc in material["ksks"]]
        pool._zsks = [_key_from_material(doc) for doc in material["zsks"]]
        pool._index = 0
        return pool


def _key_material(key):
    private = key.private
    return [key.algorithm, key.flags, private.n, private.e, private.d, private.p, private.q]


def _key_from_material(doc):
    algorithm, flags, n, e, d, p, q = doc
    return KeyPair(algorithm, flags, RsaPrivateKey(n, e, d, p=p, q=q))


def _pooled_keys(seed, size=16, algorithm=ALG_RSASHA256, rsa_bits=512):
    """A :class:`KeyPool`, via the build cache when one is active.

    Generating the pool's RSA keys is the single largest fixed cost of a
    worker's build phase (~0.7 s); the first process in a fleet pays it
    and stores the material, everyone else rebuilds the pool from the
    cached integers in milliseconds. Identical material → identical
    signatures, so the cache is invisible to the wire.
    """
    cache = build_cache.active()
    if cache is None or algorithm != ALG_RSASHA256:
        return KeyPool(size=size, algorithm=algorithm, rsa_bits=rsa_bits, seed=seed)
    fingerprint = cache.fingerprint(
        "keypool", f"{size}|{algorithm}|{rsa_bits}|{seed}".encode("ascii")
    )
    material = cache.load("keypool", fingerprint)
    if material is not None:
        cache.count("hit")
        return KeyPool.from_material(material)
    with cache.lock("keypool", fingerprint):
        material = cache.load("keypool", fingerprint)
        if material is not None:
            cache.count("hit")
            return KeyPool.from_material(material)
        cache.count("miss")
        pool = KeyPool(size=size, algorithm=algorithm, rsa_bits=rsa_bits, seed=seed)
        cache.store("keypool", fingerprint, pool.material())
    return pool


@dataclass(frozen=True)
class BuildScope:
    """Which slice of the fleet's work this process builds eagerly.

    A scoped build signs shared infrastructure lazily-on-demand (TLD
    zones) or once (root, operators, probe zones via their builders) and
    pre-warms the build cache only for the SLD subtrees its own unit
    sub-stream (``Population.iter_shard(shard, workers)``) resolves
    through.
    """

    shard: int
    workers: int


@dataclass
class Internet:
    """Handles to everything the testbed built."""

    network: Network
    allocator: AddressAllocator
    root_addresses: list
    trust_anchor_ds: RRset
    root_zone: object
    tld_zones: dict
    tld_specs: list
    domain_specs: list
    domain_zones: dict
    operator_servers: dict
    operator_ips: dict
    key_pool: KeyPool
    resolvers: list = field(default_factory=list)
    #: The bounded lazy SLD host when built with ``lazy_domains=True``.
    lazy_host: object = None

    def make_resolver(
        self,
        policy=None,
        validate=True,
        network_id="public",
        ipv6=False,
        name=None,
        guard=None,
    ):
        """Attach a new recursive resolver to the network and return it.

        *guard* is an optional :class:`repro.resolver.guard.GuardConfig`;
        the default None keeps the resolver's legacy unbounded behaviour.
        """
        ip = self.allocator.next_v6() if ipv6 else self.allocator.next_v4()
        resolver = ValidatingResolver(
            self.network,
            ip,
            self.root_addresses,
            self.trust_anchor_ds,
            policy=policy or Nsec3Policy(),
            validate=validate,
            name=name or f"resolver-{len(self.resolvers)}",
            guard=guard,
        )
        self.network.attach(ip, resolver, network_id=network_id)
        self.resolvers.append(resolver)
        return resolver

    def zone_of(self, domain):
        zone = self.domain_zones.get(Name.from_text(domain))
        if zone is None and self.lazy_host is not None:
            spec = self.domain_specs.spec_for_name(str(domain))
            if spec is not None:
                server = self.operator_servers[spec.operator]
                zone = server.zone_for(domain)
        return zone


def zone_rng(seed, name):
    """The per-zone rng: every zone's random content (A-record addresses,
    NSEC3 salt bytes) derives from ``(seed, zone name)`` alone, so a zone
    materialised lazily mid-campaign is byte-identical to one built
    eagerly at startup."""
    return random.Random(f"{seed}/zone/{str(name).rstrip('.').lower()}")


def _nsec3_params_for(spec, rng):
    salt = bytes(rng.randrange(256) for __ in range(spec.salt_length))
    return Nsec3Params(iterations=spec.iterations, salt=salt, opt_out=spec.opt_out)


def _sign_from_spec(zone, spec, pool, rng, name):
    ksk, zsk = pool.pair_for(name)
    if spec.denial == "nsec3":
        policy = SigningPolicy(nsec3=_nsec3_params_for(spec, rng))
    else:
        policy = SigningPolicy(nsec3=None)
    sign_zone(zone, policy, ksk=ksk, zsk=zsk)
    return zone


def build_domain_zone(spec, seed, pool, ns_domain):
    """Build (and sign, per its spec) one registered-domain zone.

    Everything is derived from ``(spec, seed)``: addresses and salt from
    the per-zone rng, keys from :meth:`KeyPool.pair_for`. The eager
    build loop and the lazy on-first-query factory both call this, which
    is what makes the two hosting modes wire-identical.
    """
    rng = zone_rng(seed, spec.name)
    ns_names = (f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
    zone = (
        ZoneBuilder(spec.name)
        .soa(ns_names[0], f"hostmaster.{spec.name}")
        .ns(*ns_names)
        .a("@", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
        .a("www", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
        .build()
    )
    if spec.dnssec:
        _sign_from_spec(zone, spec, pool, rng, spec.name)
    return zone


def domain_ds_records(spec, pool):
    """The DS set the parent publishes for *spec* (no zone build needed)."""
    if not spec.dnssec:
        return None
    ksk, __ = pool.pair_for(spec.name)
    return [make_ds(spec.name, ksk.dnskey)]


class LazyZoneHost:
    """Materialise population SLD zones on first authoritative query.

    Registered as each operator server's ``zone_factory``: when a query
    misses every hosted zone, the candidate SLD (last two labels) is
    inverted back to its :class:`~repro.testbed.population.DomainSpec`
    and the zone is built, signed, and hosted on the spot — byte-identical
    to the eager build, because :func:`build_domain_zone` derives all
    content from ``(spec, seed)``. A bounded FIFO keeps at most *limit*
    signed zones resident; evicted zones rebuild deterministically if
    queried again, so cached packed answers stay valid across evictions
    (eviction therefore does **not** invalidate answer caches).
    """

    def __init__(self, population, ns_domains, seed, pool, limit=256):
        self.population = population
        self.ns_domains = ns_domains
        self.seed = seed
        self.pool = pool
        self.limit = limit
        self.builds = 0
        self.evictions = 0
        self._resident = OrderedDict()  # origin Name -> hosting server

    def factory_for(self, operator_key, server):
        def factory(qname):
            return self._materialise(operator_key, server, qname)

        return factory

    def _materialise(self, operator_key, server, qname):
        labels = str(qname).rstrip(".").lower().split(".")
        if len(labels) < 2:
            return None
        candidate = ".".join(labels[-2:])
        spec = self.population.spec_for_name(candidate)
        if spec is None or spec.operator != operator_key:
            return None
        zone = build_domain_zone(
            spec, self.seed, self.pool, self.ns_domains[spec.operator]
        )
        server.host_lazily(zone)
        self._resident[zone.origin] = server
        self.builds += 1
        _count_lazy_zone("build")
        while len(self._resident) > self.limit:
            origin, host = self._resident.popitem(last=False)
            host.evict_zone(origin)
            self.evictions += 1
            _count_lazy_zone("eviction")
        return zone


_lazy_zone_counter = ChildCache()


def _count_lazy_zone(event):
    if not obs.enabled:
        return
    child = _lazy_zone_counter.get(obs.registry, event)
    if child is None:
        child = _lazy_zone_counter.put(
            event,
            obs.registry.counter(
                "repro_lazy_zone_builds_total",
                "Lazy SLD zone host activity (builds and FIFO evictions).",
                labelnames=("event",),
            ).labels(event=event),
        )
    child.inc()


class LazyTldZones(dict):
    """TLD zones signed on first use instead of at build time.

    Under a :class:`BuildScope` every worker would otherwise re-sign all
    TLD zones up front. Instead the unsigned zones are parked here and
    the dict materialises a zone — sign via the build cache, host on the
    registry server — the first time anything looks it up: an
    authoritative query (through the registry's ``zone_factory``), the
    probe/adversary builders grabbing ``"com"``, or a data-source
    collector. The first process in the fleet to touch a TLD signs it;
    everyone else loads the cached entry. Lookup semantics (``in``,
    ``len``, ``[]``, ``get``) match the eager dict exactly.
    """

    def __init__(self, force):
        super().__init__()
        self._pending = {}
        self._force = force

    def defer(self, label, zone, spec):
        self._pending[label] = (zone, spec)

    def __missing__(self, label):
        pending = self._pending.pop(label, None)
        if pending is None:
            raise KeyError(label)
        zone = self._force(*pending)
        super().__setitem__(label, zone)
        return zone

    def get(self, label, default=None):
        try:
            return self[label]
        except KeyError:
            return default

    def __contains__(self, label):
        return super().__contains__(label) or label in self._pending

    def __len__(self):
        return super().__len__() + len(self._pending)

    def __iter__(self):
        yield from dict.__iter__(self)
        yield from list(self._pending)

    def keys(self):
        return list(self)

    def values(self):
        return [self[label] for label in list(self)]

    def items(self):
        return [(label, self[label]) for label in list(self)]


def _no_progress():
    pass


class _NullProfiler:
    """Swallows profiler observations during the cache warm pass."""

    @staticmethod
    def observe_iterations(iterations):
        pass


def _warm_shard_cache(population, scope, seed, pool, ns_domains, progress):
    """Pre-sign this shard's own DNSSEC SLD zones into the build cache.

    The shard's unit sub-stream (``iter_shard(shard, workers)``) names
    exactly the domains its measure phase will query, so the signed
    artifacts are computed here — during the build phase, where the
    heartbeat reports progress — and merely *loaded* when a query
    materialises the zone. Cost accounting must not move: the campaign
    charges a zone's chain hashing at query-time materialisation (cold
    build or cache load, identical either way), so the meter is
    suspended and the iteration profiler nulled for the duration; the
    query-time charge stream is unchanged whether this pass ran or not.
    Zones signed here are discarded — only the cache entries matter.
    """
    from repro.dnssec.costmodel import meter

    saved_profiler = obs.profiler
    obs.profiler = _NullProfiler()
    try:
        with meter.suspended():
            for spec in population.iter_shard(scope.shard, scope.workers):
                if spec.dnssec:
                    build_domain_zone(spec, seed, pool, ns_domains[spec.operator])
                progress()
    finally:
        obs.profiler = saved_profiler


def build_internet(
    domain_specs,
    tld_specs,
    seed=7,
    network=None,
    host_domains=True,
    domains_per_zone_extra=1,
    lazy_domains=False,
    lazy_zone_limit=256,
    build_scope=None,
    progress=None,
):
    """Build and wire up the whole simulated Internet.

    *domain_specs* / *tld_specs* come from :mod:`repro.testbed.population`;
    *domain_specs* may be a materialised list or a streaming
    :class:`~repro.testbed.population.Population`. With
    ``host_domains=False`` only the root/TLD/operator infrastructure is
    hosted (useful when an experiment needs the tree but not the
    population).

    With ``lazy_domains=True`` (requires a :class:`Population`) the
    registered-domain zones are *not* built up front: the parent TLD
    zones carry every delegation and DS exactly as in the eager build —
    the build streams over the population once without retaining it — but
    each SLD zone is built and signed only when an authoritative query
    first needs it, through a bounded :class:`LazyZoneHost`. Peak memory
    then stays flat in the number of domains while every datagram on the
    wire is byte-identical to the eager build's.

    A :class:`BuildScope` (fleet workers pass one) additionally defers
    TLD-zone signing to first use via :class:`LazyTldZones` — split
    across the fleet by the build cache — and, when both a cache and
    ``lazy_domains`` are active, pre-warms the cache with the signed
    artifacts of this shard's own SLD sub-stream. *progress* is an
    optional zero-arg callback ticked as construction advances (the
    supervised worker feeds it into its heartbeat).
    """
    from repro.testbed.population import Population

    network = network or Network(seed=seed)
    allocator = AddressAllocator()
    pool = _pooled_keys(seed + 1)
    if lazy_domains and not isinstance(domain_specs, Population):
        raise TypeError("lazy_domains=True needs a streaming Population")
    if progress is None:
        progress = _no_progress

    # --- servers -----------------------------------------------------------
    root_server = AuthoritativeServer("root-servers", network)
    root_v4, root_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(root_v4, root_server)
    network.attach(root_v6, root_server)

    registry_server = AuthoritativeServer("tld-registry", network)
    registry_v4, registry_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(registry_v4, registry_server)
    network.attach(registry_v6, registry_server)

    operator_servers = {}
    operator_ips = {}
    # One streaming pass: which operators actually appear decides which
    # servers exist (and therefore every later address allocation), so
    # the rule must not depend on how the specs are stored.
    operator_keys = set(spec.operator for spec in domain_specs)
    operator_keys.add("generic-web")
    for key in sorted(operator_keys):
        server = AuthoritativeServer(f"op-{key}", network)
        v4, v6 = allocator.next_v4(), allocator.next_v6()
        network.attach(v4, server)
        network.attach(v6, server)
        operator_servers[key] = server
        operator_ips[key] = (v4, v6)

    # --- TLD zones ------------------------------------------------------------
    tld_zones = {}
    tld_builders = {}
    for spec in tld_specs:
        builder = (
            ZoneBuilder(spec.label)
            .soa(f"a.nic.{spec.label}", f"hostmaster.nic.{spec.label}")
            .ns(f"a.nic.{spec.label}.")
            .a(f"a.nic.{spec.label}.", registry_v4)
            .aaaa(f"a.nic.{spec.label}.", registry_v6)
        )
        tld_builders[spec.label] = builder

    # --- operator nameserver infrastructure domains --------------------------------
    ns_domains = {}
    for key in sorted(operator_keys):
        profile = OPERATORS_BY_KEY.get(key)
        ns_domain = profile.ns_domain if profile else f"{key.replace('.', '-')}-dns.net"
        ns_domains[key] = ns_domain
        v4, v6 = operator_ips[key]
        zone = (
            ZoneBuilder(ns_domain)
            .soa(f"ns1.{ns_domain}", f"hostmaster.{ns_domain}")
            .ns(f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            .a("ns1", v4)
            .a("ns2", v4)
            .aaaa("ns1", v6)
            .aaaa("ns2", v6)
            .build()
        )
        operator_servers[key].add_zone(zone)
        infra_tld = ns_domain.rsplit(".", 1)[-1]
        builder = tld_builders.get(infra_tld)
        if builder is not None:
            child = Name.from_text(ns_domain)
            builder.delegate(child, f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            # In-bailiwick glue for the operator's nameservers.
            builder.a(f"ns1.{ns_domain}.", v4)
            builder.a(f"ns2.{ns_domain}.", v4)
            builder.aaaa(f"ns1.{ns_domain}.", v6)
            builder.aaaa(f"ns2.{ns_domain}.", v6)

    # --- domain zones ---------------------------------------------------------------
    # One pass over the population stream, shared by both hosting modes:
    # the parent-side state (delegations + DS in the TLD builders) is
    # always materialised, the child zones only when ``not lazy_domains``.
    domain_zones = {}
    lazy_host = None
    if host_domains:
        # One immutable NS rdata pair per operator: a million delegations
        # share ~two dozen objects instead of re-parsing the same
        # nameserver names once per cut (the rdata bytes — and hence the
        # signed zones and every wire datagram — are identical).
        ns_rdata = {
            key: (NS(f"ns1.{domain}."), NS(f"ns2.{domain}."))
            for key, domain in ns_domains.items()
        }
        for index, spec in enumerate(domain_specs):
            ds_records = domain_ds_records(spec, pool)
            if not lazy_domains:
                zone = build_domain_zone(
                    spec, seed, pool, ns_domains[spec.operator]
                )
                operator_servers[spec.operator].add_zone(zone)
                domain_zones[zone.origin] = zone
            tld_builder = tld_builders.get(spec.tld)
            if tld_builder is not None:
                tld_builder.delegate(
                    Name.from_text(spec.name),
                    *ns_rdata[spec.operator],
                    ds=ds_records,
                )
            if not (index + 1) % 1024:
                progress()
        if lazy_domains:
            lazy_host = LazyZoneHost(
                domain_specs, ns_domains, seed, pool, limit=lazy_zone_limit
            )
            for key, server in operator_servers.items():
                server.zone_factory = lazy_host.factory_for(key, server)

    # --- sign and host the TLD zones -------------------------------------------------
    tld_spec_by_label = {spec.label: spec for spec in tld_specs}
    root_builder = (
        ZoneBuilder(".")
        .soa("a.root-servers.net.", "nstld.verisign-grs.com.")
        .ns("a.root-servers.net.")
        .a("a.root-servers.net.", root_v4)
        .aaaa("a.root-servers.net.", root_v6)
    )
    if build_scope is not None:
        # Scoped (fleet) build: park the unsigned TLD zones and let the
        # first toucher — fleet-wide, thanks to the build cache — sign
        # each one. The parent-side DS needs only the KSK, which
        # ``pair_for`` yields without signing, so the root zone is
        # byte-identical to the eager build's.
        def _force_tld(zone, spec):
            if spec.dnssec:
                _sign_from_spec(zone, spec, pool, zone_rng(seed, spec.label), spec.label)
            registry_server.host_lazily(zone)
            return zone

        tld_zones = LazyTldZones(_force_tld)

        def _registry_factory(qname):
            labels = str(qname).rstrip(".").lower().split(".")
            if labels and labels[-1] in tld_zones._pending:
                return tld_zones[labels[-1]]
            return None

        registry_server.zone_factory = _registry_factory
        for label, builder in tld_builders.items():
            spec = tld_spec_by_label[label]
            tld_zones.defer(label, builder.build(), spec)
            ds_records = None
            if spec.dnssec:
                ds_records = [make_ds(label, pool.pair_for(label)[0].dnskey)]
            root_builder.delegate(Name.from_text(label), f"a.nic.{label}.", ds=ds_records)
            root_builder.a(f"a.nic.{label}.", registry_v4)
            root_builder.aaaa(f"a.nic.{label}.", registry_v6)
            progress()
    else:
        for label, builder in tld_builders.items():
            spec = tld_spec_by_label[label]
            zone = builder.build()
            ds_records = None
            if spec.dnssec:
                _sign_from_spec(zone, spec, pool, zone_rng(seed, label), label)
                ds_records = [make_ds(label, zone.keys[0].dnskey)]
            registry_server.add_zone(zone)
            tld_zones[label] = zone
            root_builder.delegate(Name.from_text(label), f"a.nic.{label}.", ds=ds_records)
            root_builder.a(f"a.nic.{label}.", registry_v4)
            root_builder.aaaa(f"a.nic.{label}.", registry_v6)
            progress()

    # --- root zone (NSEC-signed, like the real root) ------------------------------------
    root_zone = root_builder.build()
    ksk, zsk = pool.pair_for(".")
    sign_zone(root_zone, SigningPolicy(nsec3=None), ksk=ksk, zsk=zsk)
    root_server.add_zone(root_zone)
    trust_anchor = RRset(".", RdataType.DS, 3600, [make_ds(".", ksk.dnskey)])

    # --- scoped cache warm-up -----------------------------------------------------------
    if (
        build_scope is not None
        and lazy_domains
        and host_domains
        and build_cache.active() is not None
    ):
        _warm_shard_cache(domain_specs, build_scope, seed, pool, ns_domains, progress)

    return Internet(
        network=network,
        allocator=allocator,
        root_addresses=[root_v4, root_v6],
        trust_anchor_ds=trust_anchor,
        root_zone=root_zone,
        tld_zones=tld_zones,
        tld_specs=list(tld_specs),
        domain_specs=(
            domain_specs
            if isinstance(domain_specs, Population)
            else list(domain_specs)
        ),
        domain_zones=domain_zones,
        operator_servers=operator_servers,
        operator_ips=operator_ips,
        key_pool=pool,
        lazy_host=lazy_host,
    )
