"""Assembles the simulated Internet: root, TLDs, domains, operators.

Every zone is genuinely DNSSEC-signed (per its spec) and hosted on an
authoritative server attached to the simulated network, so the scanners in
:mod:`repro.scanner` measure real protocol behaviour end to end.

Key material comes from a seeded RSA-512 pool: RSA verification is two
orders of magnitude cheaper than signing in pure Python, which matches the
asymmetry real resolvers enjoy via OpenSSL and keeps large testbeds fast.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.crypto.keys import ALG_RSASHA256, generate_keypair, make_ds
from repro.dns.name import Name
from repro.dns.rdata import NS
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.net.address import AddressAllocator
from repro.net.network import Network
from repro.resolver.policy import Nsec3Policy
from repro.resolver.validating import ValidatingResolver
from repro.server.authoritative import AuthoritativeServer
from repro.testbed.operators import OPERATORS_BY_KEY
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone


class KeyPool:
    """A pool of pre-generated signing keys, cycled across zones.

    Sharing keys across synthetic zones collapses key-generation cost from
    O(zones) to O(1) while leaving every signature and validation real.
    Real operators do reuse infrastructure-wide keys far less aggressively;
    nothing in the measured behaviour depends on key uniqueness.
    """

    def __init__(self, size=16, algorithm=ALG_RSASHA256, rsa_bits=512, seed=42):
        rng = random.Random(seed)
        self._ksks = [
            generate_keypair(algorithm, ksk=True, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._zsks = [
            generate_keypair(algorithm, ksk=False, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._index = 0

    def next_pair(self):
        ksk = self._ksks[self._index % len(self._ksks)]
        zsk = self._zsks[self._index % len(self._zsks)]
        self._index += 1
        return ksk, zsk

    def pair_for(self, name):
        """The pool pair owned by *name* — stable, order-independent.

        Keying on CRC32 of the zone name (never Python's salted
        ``hash()``) means a zone built lazily on first query draws the
        same keys it would have drawn in an eager build, so both paths
        sign byte-identical zones.
        """
        index = zlib.crc32(str(name).rstrip(".").lower().encode("ascii"))
        return (
            self._ksks[index % len(self._ksks)],
            self._zsks[index % len(self._zsks)],
        )


@dataclass
class Internet:
    """Handles to everything the testbed built."""

    network: Network
    allocator: AddressAllocator
    root_addresses: list
    trust_anchor_ds: RRset
    root_zone: object
    tld_zones: dict
    tld_specs: list
    domain_specs: list
    domain_zones: dict
    operator_servers: dict
    operator_ips: dict
    key_pool: KeyPool
    resolvers: list = field(default_factory=list)
    #: The bounded lazy SLD host when built with ``lazy_domains=True``.
    lazy_host: object = None

    def make_resolver(
        self,
        policy=None,
        validate=True,
        network_id="public",
        ipv6=False,
        name=None,
        guard=None,
    ):
        """Attach a new recursive resolver to the network and return it.

        *guard* is an optional :class:`repro.resolver.guard.GuardConfig`;
        the default None keeps the resolver's legacy unbounded behaviour.
        """
        ip = self.allocator.next_v6() if ipv6 else self.allocator.next_v4()
        resolver = ValidatingResolver(
            self.network,
            ip,
            self.root_addresses,
            self.trust_anchor_ds,
            policy=policy or Nsec3Policy(),
            validate=validate,
            name=name or f"resolver-{len(self.resolvers)}",
            guard=guard,
        )
        self.network.attach(ip, resolver, network_id=network_id)
        self.resolvers.append(resolver)
        return resolver

    def zone_of(self, domain):
        zone = self.domain_zones.get(Name.from_text(domain))
        if zone is None and self.lazy_host is not None:
            spec = self.domain_specs.spec_for_name(str(domain))
            if spec is not None:
                server = self.operator_servers[spec.operator]
                zone = server.zone_for(domain)
        return zone


def zone_rng(seed, name):
    """The per-zone rng: every zone's random content (A-record addresses,
    NSEC3 salt bytes) derives from ``(seed, zone name)`` alone, so a zone
    materialised lazily mid-campaign is byte-identical to one built
    eagerly at startup."""
    return random.Random(f"{seed}/zone/{str(name).rstrip('.').lower()}")


def _nsec3_params_for(spec, rng):
    salt = bytes(rng.randrange(256) for __ in range(spec.salt_length))
    return Nsec3Params(iterations=spec.iterations, salt=salt, opt_out=spec.opt_out)


def _sign_from_spec(zone, spec, pool, rng, name):
    ksk, zsk = pool.pair_for(name)
    if spec.denial == "nsec3":
        policy = SigningPolicy(nsec3=_nsec3_params_for(spec, rng))
    else:
        policy = SigningPolicy(nsec3=None)
    sign_zone(zone, policy, ksk=ksk, zsk=zsk)
    return zone


def build_domain_zone(spec, seed, pool, ns_domain):
    """Build (and sign, per its spec) one registered-domain zone.

    Everything is derived from ``(spec, seed)``: addresses and salt from
    the per-zone rng, keys from :meth:`KeyPool.pair_for`. The eager
    build loop and the lazy on-first-query factory both call this, which
    is what makes the two hosting modes wire-identical.
    """
    rng = zone_rng(seed, spec.name)
    ns_names = (f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
    zone = (
        ZoneBuilder(spec.name)
        .soa(ns_names[0], f"hostmaster.{spec.name}")
        .ns(*ns_names)
        .a("@", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
        .a("www", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
        .build()
    )
    if spec.dnssec:
        _sign_from_spec(zone, spec, pool, rng, spec.name)
    return zone


def domain_ds_records(spec, pool):
    """The DS set the parent publishes for *spec* (no zone build needed)."""
    if not spec.dnssec:
        return None
    ksk, __ = pool.pair_for(spec.name)
    return [make_ds(spec.name, ksk.dnskey)]


class LazyZoneHost:
    """Materialise population SLD zones on first authoritative query.

    Registered as each operator server's ``zone_factory``: when a query
    misses every hosted zone, the candidate SLD (last two labels) is
    inverted back to its :class:`~repro.testbed.population.DomainSpec`
    and the zone is built, signed, and hosted on the spot — byte-identical
    to the eager build, because :func:`build_domain_zone` derives all
    content from ``(spec, seed)``. A bounded FIFO keeps at most *limit*
    signed zones resident; evicted zones rebuild deterministically if
    queried again, so cached packed answers stay valid across evictions
    (eviction therefore does **not** invalidate answer caches).
    """

    def __init__(self, population, ns_domains, seed, pool, limit=256):
        self.population = population
        self.ns_domains = ns_domains
        self.seed = seed
        self.pool = pool
        self.limit = limit
        self.builds = 0
        self.evictions = 0
        self._resident = OrderedDict()  # origin Name -> hosting server

    def factory_for(self, operator_key, server):
        def factory(qname):
            return self._materialise(operator_key, server, qname)

        return factory

    def _materialise(self, operator_key, server, qname):
        labels = str(qname).rstrip(".").lower().split(".")
        if len(labels) < 2:
            return None
        candidate = ".".join(labels[-2:])
        spec = self.population.spec_for_name(candidate)
        if spec is None or spec.operator != operator_key:
            return None
        zone = build_domain_zone(
            spec, self.seed, self.pool, self.ns_domains[spec.operator]
        )
        server.host_lazily(zone)
        self._resident[zone.origin] = server
        self.builds += 1
        while len(self._resident) > self.limit:
            origin, host = self._resident.popitem(last=False)
            host.evict_zone(origin)
            self.evictions += 1
        return zone


def build_internet(
    domain_specs,
    tld_specs,
    seed=7,
    network=None,
    host_domains=True,
    domains_per_zone_extra=1,
    lazy_domains=False,
    lazy_zone_limit=256,
):
    """Build and wire up the whole simulated Internet.

    *domain_specs* / *tld_specs* come from :mod:`repro.testbed.population`;
    *domain_specs* may be a materialised list or a streaming
    :class:`~repro.testbed.population.Population`. With
    ``host_domains=False`` only the root/TLD/operator infrastructure is
    hosted (useful when an experiment needs the tree but not the
    population).

    With ``lazy_domains=True`` (requires a :class:`Population`) the
    registered-domain zones are *not* built up front: the parent TLD
    zones carry every delegation and DS exactly as in the eager build —
    the build streams over the population once without retaining it — but
    each SLD zone is built and signed only when an authoritative query
    first needs it, through a bounded :class:`LazyZoneHost`. Peak memory
    then stays flat in the number of domains while every datagram on the
    wire is byte-identical to the eager build's.
    """
    from repro.testbed.population import Population

    network = network or Network(seed=seed)
    allocator = AddressAllocator()
    pool = KeyPool(seed=seed + 1)
    if lazy_domains and not isinstance(domain_specs, Population):
        raise TypeError("lazy_domains=True needs a streaming Population")

    # --- servers -----------------------------------------------------------
    root_server = AuthoritativeServer("root-servers", network)
    root_v4, root_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(root_v4, root_server)
    network.attach(root_v6, root_server)

    registry_server = AuthoritativeServer("tld-registry", network)
    registry_v4, registry_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(registry_v4, registry_server)
    network.attach(registry_v6, registry_server)

    operator_servers = {}
    operator_ips = {}
    # One streaming pass: which operators actually appear decides which
    # servers exist (and therefore every later address allocation), so
    # the rule must not depend on how the specs are stored.
    operator_keys = set(spec.operator for spec in domain_specs)
    operator_keys.add("generic-web")
    for key in sorted(operator_keys):
        server = AuthoritativeServer(f"op-{key}", network)
        v4, v6 = allocator.next_v4(), allocator.next_v6()
        network.attach(v4, server)
        network.attach(v6, server)
        operator_servers[key] = server
        operator_ips[key] = (v4, v6)

    # --- TLD zones ------------------------------------------------------------
    tld_zones = {}
    tld_builders = {}
    for spec in tld_specs:
        builder = (
            ZoneBuilder(spec.label)
            .soa(f"a.nic.{spec.label}", f"hostmaster.nic.{spec.label}")
            .ns(f"a.nic.{spec.label}.")
            .a(f"a.nic.{spec.label}.", registry_v4)
            .aaaa(f"a.nic.{spec.label}.", registry_v6)
        )
        tld_builders[spec.label] = builder

    # --- operator nameserver infrastructure domains --------------------------------
    ns_domains = {}
    for key in sorted(operator_keys):
        profile = OPERATORS_BY_KEY.get(key)
        ns_domain = profile.ns_domain if profile else f"{key.replace('.', '-')}-dns.net"
        ns_domains[key] = ns_domain
        v4, v6 = operator_ips[key]
        zone = (
            ZoneBuilder(ns_domain)
            .soa(f"ns1.{ns_domain}", f"hostmaster.{ns_domain}")
            .ns(f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            .a("ns1", v4)
            .a("ns2", v4)
            .aaaa("ns1", v6)
            .aaaa("ns2", v6)
            .build()
        )
        operator_servers[key].add_zone(zone)
        infra_tld = ns_domain.rsplit(".", 1)[-1]
        builder = tld_builders.get(infra_tld)
        if builder is not None:
            child = Name.from_text(ns_domain)
            builder.delegate(child, f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            # In-bailiwick glue for the operator's nameservers.
            builder.a(f"ns1.{ns_domain}.", v4)
            builder.a(f"ns2.{ns_domain}.", v4)
            builder.aaaa(f"ns1.{ns_domain}.", v6)
            builder.aaaa(f"ns2.{ns_domain}.", v6)

    # --- domain zones ---------------------------------------------------------------
    # One pass over the population stream, shared by both hosting modes:
    # the parent-side state (delegations + DS in the TLD builders) is
    # always materialised, the child zones only when ``not lazy_domains``.
    domain_zones = {}
    lazy_host = None
    if host_domains:
        # One immutable NS rdata pair per operator: a million delegations
        # share ~two dozen objects instead of re-parsing the same
        # nameserver names once per cut (the rdata bytes — and hence the
        # signed zones and every wire datagram — are identical).
        ns_rdata = {
            key: (NS(f"ns1.{domain}."), NS(f"ns2.{domain}."))
            for key, domain in ns_domains.items()
        }
        for spec in domain_specs:
            ds_records = domain_ds_records(spec, pool)
            if not lazy_domains:
                zone = build_domain_zone(
                    spec, seed, pool, ns_domains[spec.operator]
                )
                operator_servers[spec.operator].add_zone(zone)
                domain_zones[zone.origin] = zone
            tld_builder = tld_builders.get(spec.tld)
            if tld_builder is not None:
                tld_builder.delegate(
                    Name.from_text(spec.name),
                    *ns_rdata[spec.operator],
                    ds=ds_records,
                )
        if lazy_domains:
            lazy_host = LazyZoneHost(
                domain_specs, ns_domains, seed, pool, limit=lazy_zone_limit
            )
            for key, server in operator_servers.items():
                server.zone_factory = lazy_host.factory_for(key, server)

    # --- sign and host the TLD zones -------------------------------------------------
    tld_spec_by_label = {spec.label: spec for spec in tld_specs}
    root_builder = (
        ZoneBuilder(".")
        .soa("a.root-servers.net.", "nstld.verisign-grs.com.")
        .ns("a.root-servers.net.")
        .a("a.root-servers.net.", root_v4)
        .aaaa("a.root-servers.net.", root_v6)
    )
    for label, builder in tld_builders.items():
        spec = tld_spec_by_label[label]
        zone = builder.build()
        ds_records = None
        if spec.dnssec:
            _sign_from_spec(zone, spec, pool, zone_rng(seed, label), label)
            ds_records = [make_ds(label, zone.keys[0].dnskey)]
        registry_server.add_zone(zone)
        tld_zones[label] = zone
        root_builder.delegate(Name.from_text(label), f"a.nic.{label}.", ds=ds_records)
        root_builder.a(f"a.nic.{label}.", registry_v4)
        root_builder.aaaa(f"a.nic.{label}.", registry_v6)

    # --- root zone (NSEC-signed, like the real root) ------------------------------------
    root_zone = root_builder.build()
    ksk, zsk = pool.pair_for(".")
    sign_zone(root_zone, SigningPolicy(nsec3=None), ksk=ksk, zsk=zsk)
    root_server.add_zone(root_zone)
    trust_anchor = RRset(".", RdataType.DS, 3600, [make_ds(".", ksk.dnskey)])

    return Internet(
        network=network,
        allocator=allocator,
        root_addresses=[root_v4, root_v6],
        trust_anchor_ds=trust_anchor,
        root_zone=root_zone,
        tld_zones=tld_zones,
        tld_specs=list(tld_specs),
        domain_specs=(
            domain_specs
            if isinstance(domain_specs, Population)
            else list(domain_specs)
        ),
        domain_zones=domain_zones,
        operator_servers=operator_servers,
        operator_ips=operator_ips,
        key_pool=pool,
        lazy_host=lazy_host,
    )
