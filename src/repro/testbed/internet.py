"""Assembles the simulated Internet: root, TLDs, domains, operators.

Every zone is genuinely DNSSEC-signed (per its spec) and hosted on an
authoritative server attached to the simulated network, so the scanners in
:mod:`repro.scanner` measure real protocol behaviour end to end.

Key material comes from a seeded RSA-512 pool: RSA verification is two
orders of magnitude cheaper than signing in pure Python, which matches the
asymmetry real resolvers enjoy via OpenSSL and keeps large testbeds fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keys import ALG_RSASHA256, generate_keypair, make_ds
from repro.dns.name import Name
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.net.address import AddressAllocator
from repro.net.network import Network
from repro.resolver.policy import Nsec3Policy
from repro.resolver.validating import ValidatingResolver
from repro.server.authoritative import AuthoritativeServer
from repro.testbed.operators import OPERATORS_BY_KEY
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone


class KeyPool:
    """A pool of pre-generated signing keys, cycled across zones.

    Sharing keys across synthetic zones collapses key-generation cost from
    O(zones) to O(1) while leaving every signature and validation real.
    Real operators do reuse infrastructure-wide keys far less aggressively;
    nothing in the measured behaviour depends on key uniqueness.
    """

    def __init__(self, size=16, algorithm=ALG_RSASHA256, rsa_bits=512, seed=42):
        rng = random.Random(seed)
        self._ksks = [
            generate_keypair(algorithm, ksk=True, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._zsks = [
            generate_keypair(algorithm, ksk=False, rsa_bits=rsa_bits, rng=rng)
            for __ in range(size)
        ]
        self._index = 0

    def next_pair(self):
        ksk = self._ksks[self._index % len(self._ksks)]
        zsk = self._zsks[self._index % len(self._zsks)]
        self._index += 1
        return ksk, zsk


@dataclass
class Internet:
    """Handles to everything the testbed built."""

    network: Network
    allocator: AddressAllocator
    root_addresses: list
    trust_anchor_ds: RRset
    root_zone: object
    tld_zones: dict
    tld_specs: list
    domain_specs: list
    domain_zones: dict
    operator_servers: dict
    operator_ips: dict
    key_pool: KeyPool
    resolvers: list = field(default_factory=list)

    def make_resolver(
        self,
        policy=None,
        validate=True,
        network_id="public",
        ipv6=False,
        name=None,
        guard=None,
    ):
        """Attach a new recursive resolver to the network and return it.

        *guard* is an optional :class:`repro.resolver.guard.GuardConfig`;
        the default None keeps the resolver's legacy unbounded behaviour.
        """
        ip = self.allocator.next_v6() if ipv6 else self.allocator.next_v4()
        resolver = ValidatingResolver(
            self.network,
            ip,
            self.root_addresses,
            self.trust_anchor_ds,
            policy=policy or Nsec3Policy(),
            validate=validate,
            name=name or f"resolver-{len(self.resolvers)}",
            guard=guard,
        )
        self.network.attach(ip, resolver, network_id=network_id)
        self.resolvers.append(resolver)
        return resolver

    def zone_of(self, domain):
        return self.domain_zones.get(Name.from_text(domain))


def _nsec3_params_for(spec, rng):
    salt = bytes(rng.randrange(256) for __ in range(spec.salt_length))
    return Nsec3Params(iterations=spec.iterations, salt=salt, opt_out=spec.opt_out)


def _sign_from_spec(zone, spec, pool, rng):
    ksk, zsk = pool.next_pair()
    if spec.denial == "nsec3":
        policy = SigningPolicy(nsec3=_nsec3_params_for(spec, rng))
    else:
        policy = SigningPolicy(nsec3=None)
    sign_zone(zone, policy, ksk=ksk, zsk=zsk, rng=rng)
    return zone


def build_internet(
    domain_specs,
    tld_specs,
    seed=7,
    network=None,
    host_domains=True,
    domains_per_zone_extra=1,
):
    """Build and wire up the whole simulated Internet.

    *domain_specs* / *tld_specs* come from :mod:`repro.testbed.population`.
    With ``host_domains=False`` only the root/TLD/operator infrastructure
    is hosted (useful when an experiment needs the tree but not the
    population).
    """
    rng = random.Random(seed)
    network = network or Network(seed=seed)
    allocator = AddressAllocator()
    pool = KeyPool(seed=seed + 1)

    # --- servers -----------------------------------------------------------
    root_server = AuthoritativeServer("root-servers", network)
    root_v4, root_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(root_v4, root_server)
    network.attach(root_v6, root_server)

    registry_server = AuthoritativeServer("tld-registry", network)
    registry_v4, registry_v6 = allocator.next_v4(), allocator.next_v6()
    network.attach(registry_v4, registry_server)
    network.attach(registry_v6, registry_server)

    operator_servers = {}
    operator_ips = {}
    operator_keys = set(spec.operator for spec in domain_specs)
    operator_keys.add("generic-web")
    for key in sorted(operator_keys):
        server = AuthoritativeServer(f"op-{key}", network)
        v4, v6 = allocator.next_v4(), allocator.next_v6()
        network.attach(v4, server)
        network.attach(v6, server)
        operator_servers[key] = server
        operator_ips[key] = (v4, v6)

    # --- TLD zones ------------------------------------------------------------
    tld_zones = {}
    tld_builders = {}
    for spec in tld_specs:
        builder = (
            ZoneBuilder(spec.label)
            .soa(f"a.nic.{spec.label}", f"hostmaster.nic.{spec.label}")
            .ns(f"a.nic.{spec.label}.")
            .a(f"a.nic.{spec.label}.", registry_v4)
            .aaaa(f"a.nic.{spec.label}.", registry_v6)
        )
        tld_builders[spec.label] = builder

    # --- operator nameserver infrastructure domains --------------------------------
    ns_domains = {}
    for key in sorted(operator_keys):
        profile = OPERATORS_BY_KEY.get(key)
        ns_domain = profile.ns_domain if profile else f"{key.replace('.', '-')}-dns.net"
        ns_domains[key] = ns_domain
        v4, v6 = operator_ips[key]
        zone = (
            ZoneBuilder(ns_domain)
            .soa(f"ns1.{ns_domain}", f"hostmaster.{ns_domain}")
            .ns(f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            .a("ns1", v4)
            .a("ns2", v4)
            .aaaa("ns1", v6)
            .aaaa("ns2", v6)
            .build()
        )
        operator_servers[key].add_zone(zone)
        infra_tld = ns_domain.rsplit(".", 1)[-1]
        builder = tld_builders.get(infra_tld)
        if builder is not None:
            child = Name.from_text(ns_domain)
            builder.delegate(child, f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            # In-bailiwick glue for the operator's nameservers.
            builder.a(f"ns1.{ns_domain}.", v4)
            builder.a(f"ns2.{ns_domain}.", v4)
            builder.aaaa(f"ns1.{ns_domain}.", v6)
            builder.aaaa(f"ns2.{ns_domain}.", v6)

    # --- domain zones ---------------------------------------------------------------
    domain_zones = {}
    if host_domains:
        for spec in domain_specs:
            ns_domain = ns_domains[spec.operator]
            ns_names = (f"ns1.{ns_domain}.", f"ns2.{ns_domain}.")
            builder = (
                ZoneBuilder(spec.name)
                .soa(ns_names[0], f"hostmaster.{spec.name}")
                .ns(*ns_names)
                .a("@", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
                .a("www", f"198.18.{rng.randrange(256)}.{rng.randrange(1, 255)}")
            )
            zone = builder.build()
            ds_records = None
            if spec.dnssec:
                _sign_from_spec(zone, spec, pool, rng)
                ds_records = [make_ds(spec.name, zone.keys[0].dnskey)]
            operator_servers[spec.operator].add_zone(zone)
            domain_zones[zone.origin] = zone
            tld_builder = tld_builders.get(spec.tld)
            if tld_builder is not None:
                tld_builder.delegate(
                    Name.from_text(spec.name), *ns_names, ds=ds_records
                )

    # --- sign and host the TLD zones -------------------------------------------------
    tld_spec_by_label = {spec.label: spec for spec in tld_specs}
    root_builder = (
        ZoneBuilder(".")
        .soa("a.root-servers.net.", "nstld.verisign-grs.com.")
        .ns("a.root-servers.net.")
        .a("a.root-servers.net.", root_v4)
        .aaaa("a.root-servers.net.", root_v6)
    )
    for label, builder in tld_builders.items():
        spec = tld_spec_by_label[label]
        zone = builder.build()
        ds_records = None
        if spec.dnssec:
            _sign_from_spec(zone, spec, pool, rng)
            ds_records = [make_ds(label, zone.keys[0].dnskey)]
        registry_server.add_zone(zone)
        tld_zones[label] = zone
        root_builder.delegate(Name.from_text(label), f"a.nic.{label}.", ds=ds_records)
        root_builder.a(f"a.nic.{label}.", registry_v4)
        root_builder.aaaa(f"a.nic.{label}.", registry_v6)

    # --- root zone (NSEC-signed, like the real root) ------------------------------------
    root_zone = root_builder.build()
    ksk, zsk = pool.next_pair()
    sign_zone(root_zone, SigningPolicy(nsec3=None), ksk=ksk, zsk=zsk, rng=rng)
    root_server.add_zone(root_zone)
    trust_anchor = RRset(".", RdataType.DS, 3600, [make_ds(".", ksk.dnskey)])

    return Internet(
        network=network,
        allocator=allocator,
        root_addresses=[root_v4, root_v6],
        trust_anchor_ds=trust_anchor,
        root_zone=root_zone,
        tld_zones=tld_zones,
        tld_specs=list(tld_specs),
        domain_specs=list(domain_specs),
        domain_zones=domain_zones,
        operator_servers=operator_servers,
        operator_ips=operator_ips,
        key_pool=pool,
    )
