"""The ``rfc9276-in-the-wild.com`` probe infrastructure (paper §4.2).

49 purpose-built child zones plus the Item 7 control:

- ``it-1`` … ``it-25`` — every iteration count up to the population P99.9;
- ``it-50`` … ``it-500`` in steps of 25 — the long tail;
- ``it-51``, ``it-101``, ``it-151`` — successors of the vendor thresholds;
- ``valid`` — compliant (0 iterations, no salt), wildcarded so unique
  probe names return NOERROR (+AD from validators);
- ``expired`` — correctly built but with expired RRSIGs (validators must
  SERVFAIL);
- ``it-2501-expired`` — 2,501 iterations (beyond every RFC 5155 limit)
  with an *expired signature over the NSEC3 RRset only*: a resolver that
  answers NXDOMAIN instead of SERVFAIL skipped signature verification and
  violates Item 7.

Divergence from the paper: their zones all carried wildcards (for
cache-busting); ours give the ``it-N`` zones no wildcard so that unique
probe names yield the NXDOMAIN + closest-encloser proof that Figure 3
classifies. The observable (RCODE/AD/EDE per iteration count) is the same.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keys import make_ds
from repro.dns.name import Name
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

#: Iteration counts with a dedicated probe zone (§4.2).
PROBE_ZONE_ITERATIONS = tuple(
    sorted(set(range(1, 26)) | set(range(50, 501, 25)) | {51, 101, 151})
)

PARENT_DOMAIN = "rfc9276-in-the-wild.com"


@dataclass
class ProbeZoneSet:
    """Handles to the deployed probe infrastructure."""

    parent_name: Name
    server: AuthoritativeServer
    server_ips: tuple
    zones: dict = field(default_factory=dict)

    def probe_name(self, key, unique=""):
        """FQDN to query for probe *key* (an iteration count or control).

        *unique* is the per-resolver cache-busting label the paper's
        methodology prescribes.
        """
        label = self.zone_label(key)
        prefix = f"{unique}." if unique else ""
        return f"{prefix}{label}.{PARENT_DOMAIN}"

    @staticmethod
    def zone_label(key):
        if key == 0 or key == "valid":
            return "valid"
        if isinstance(key, int):
            return f"it-{key}"
        return str(key)

    @property
    def query_log(self):
        return self.server.log

    def all_probe_keys(self):
        """Controls plus every it-N, in probing order."""
        return ["valid", "expired", *PROBE_ZONE_ITERATIONS, "it-2501-expired"]


def _child_zone(label, parent, server_v4, server_v6, wildcard):
    origin = f"{label}.{parent}"
    builder = (
        ZoneBuilder(origin)
        .soa(f"ns1.{origin}", f"hostmaster.{origin}")
        .ns(f"ns1.{origin}.")
        .a(f"ns1.{origin}.", server_v4)
        .aaaa(f"ns1.{origin}.", server_v6)
        .a("@", "203.0.113.80")
        .a("www", "203.0.113.80")
        .txt("@", "NSEC3 measurement study; contact research@example for opt-out")
    )
    if wildcard:
        builder.wildcard_a("203.0.113.80")
    return builder.build()


def build_probe_zones(inet, seed=9276):
    """Deploy the probe infrastructure into an existing Internet testbed.

    Inserts the delegation into the ``com`` TLD zone (re-signing it), hosts
    the parent and all child zones on a dedicated measurement server, and
    returns the :class:`ProbeZoneSet`.
    """
    rng = random.Random(seed)
    network = inet.network
    server = AuthoritativeServer("rfc9276-wild", network)
    v4, v6 = inet.allocator.next_v4(), inet.allocator.next_v6()
    network.attach(v4, server)
    network.attach(v6, server)

    parent = Name.from_text(PARENT_DOMAIN)
    parent_builder = (
        ZoneBuilder(PARENT_DOMAIN)
        .soa(f"ns1.{PARENT_DOMAIN}", f"hostmaster.{PARENT_DOMAIN}")
        .ns(f"ns1.{PARENT_DOMAIN}.")
        .a("ns1", v4)
        .aaaa("ns1", v6)
        .a("@", "203.0.113.80")
    )

    zone_specs = []
    zone_specs.append(("valid", SigningPolicy(nsec3=Nsec3Params(0, b"")), True))
    zone_specs.append(
        ("expired", SigningPolicy(nsec3=Nsec3Params(0, b""), expired=True), True)
    )
    for iterations in PROBE_ZONE_ITERATIONS:
        zone_specs.append(
            (f"it-{iterations}", SigningPolicy(nsec3=Nsec3Params(iterations, b"")), False)
        )
    zone_specs.append(
        (
            "it-2501-expired",
            SigningPolicy(nsec3=Nsec3Params(2501, b""), expired_nsec3_only=True),
            False,
        )
    )

    probe_set = ProbeZoneSet(parent, server, (v4, v6))
    child_entries = []
    for label, policy, wildcard in zone_specs:
        zone = _child_zone(label, PARENT_DOMAIN, v4, v6, wildcard)
        ksk, zsk = inet.key_pool.next_pair()
        sign_zone(zone, policy, ksk=ksk, zsk=zsk, rng=rng)
        server.add_zone(zone)
        probe_set.zones[label] = zone
        child_entries.append((label, zone))

    # Parent zone: delegate every child with DS, then sign (0 iterations).
    for label, zone in child_entries:
        origin = f"{label}.{PARENT_DOMAIN}"
        parent_builder.delegate(
            Name.from_text(origin),
            f"ns1.{origin}.",
            ds=[make_ds(origin, zone.keys[0].dnskey)],
        )
        parent_builder.a(f"ns1.{origin}.", v4)
        parent_builder.aaaa(f"ns1.{origin}.", v6)
    parent_zone = parent_builder.build()
    ksk, zsk = inet.key_pool.next_pair()
    sign_zone(parent_zone, SigningPolicy(nsec3=Nsec3Params(0, b"")), ksk=ksk, zsk=zsk, rng=rng)
    server.add_zone(parent_zone)
    probe_set.zones["@"] = parent_zone

    # Insert the delegation into .com and re-sign it with its existing keys.
    com = inet.tld_zones.get("com")
    if com is None:
        raise ValueError("testbed has no .com zone to delegate the probe domain from")
    com_spec = next(spec for spec in inet.tld_specs if spec.label == "com")
    from repro.dns.rdata import NS, A, AAAA
    from repro.dns.types import RdataType

    com.add(parent, RdataType.NS, 3600, NS(f"ns1.{PARENT_DOMAIN}."))
    com.add(parent, RdataType.DS, 3600, make_ds(PARENT_DOMAIN, parent_zone.keys[0].dnskey))
    com.add(f"ns1.{PARENT_DOMAIN}", RdataType.A, 3600, A(v4))
    com.add(f"ns1.{PARENT_DOMAIN}", RdataType.AAAA, 3600, AAAA(v6))
    ksk_com, zsk_com = com.keys if com.keys else inet.key_pool.next_pair()
    com_params = Nsec3Params(
        iterations=com_spec.iterations,
        salt=b"",
        opt_out=com_spec.opt_out,
    ) if com_spec.denial == "nsec3" else None
    sign_zone(com, SigningPolicy(nsec3=com_params), ksk=ksk_com, zsk=zsk_com, rng=rng)
    return probe_set
