"""The resolver population under measurement (paper §4.2/§5.2, Figure 3).

Deploys open and closed, IPv4 and IPv6 resolvers whose vendor-policy
mixture is calibrated to the paper's findings:

- 59.9 % of validators implement Item 6 (insecure above a limit), with the
  limit at 150 for the 2021 software wave, at 100 for Google forwarders
  (36.4 % of open IPv4 validators), and at 50 for the 12.5×-rarer
  CVE-2023-50868-patched installations;
- 18.4 % implement Item 8 (SERVFAIL above a limit), mostly at 150
  (Cloudflare/OpenDNS), 418 resolvers from it-1 (query-copying devices),
  92 at it-101 (Technitium, with EDE 27);
- 0.2 % violate Item 7 (skip NSEC3 RRSIG verification);
- 4.3 % show the Item 12 insecure/SERVFAIL gap;
- the rest validate but apply no iteration limit.

Closed resolvers sit inside private network segments; the simulated
network refuses them datagrams from the outside, so only the Atlas-style
probes (:mod:`repro.scanner.atlas`) can reach them — the same constraint
that forced the paper onto RIPE Atlas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.network import Host
from repro.resolver.forwarder import QueryCopyingForwarder
from repro.resolver.policy import VENDOR_POLICIES

#: Mixture of validating resolvers: (kind, policy name, weight).
#: Weights follow §5.2; see the module docstring for the provenance.
DEFAULT_VALIDATOR_MIXTURE = (
    # Item 6 at 150: the 2021 vendor wave.
    ("resolver", "bind9-2021", 0.055),
    ("resolver", "unbound", 0.060),
    ("resolver", "knot-2021", 0.015),
    ("resolver", "powerdns-2021", 0.040),
    ("resolver", "quad9", 0.012),
    ("resolver", "sloppy-150", 0.002),     # Item 7 violators (0.2 %)
    ("resolver", "gapped", 0.043),         # Item 12 gaps (4.3 %)
    # Item 6 at 100: Google Public DNS and its forwarders.
    ("resolver", "google", 0.364),
    # Item 6 at 50: CVE-2023-50868 patched (≈ 12.5× rarer than 150).
    ("resolver", "bind9-2023", 0.008),
    ("resolver", "knot-2023", 0.003),
    ("resolver", "powerdns-2023", 0.004),
    # Item 8 at 150: Cloudflare / OpenDNS and their forwarders.
    ("resolver", "cloudflare", 0.118),
    ("resolver", "opendns", 0.058),
    # Item 8 at 100 with EDE 27: Technitium.
    ("resolver", "technitium", 0.001),
    # Item 8 at 0: broken devices echoing the query (418 in the paper).
    ("copier", "strict-rfc9276", 0.004),
    # No iteration limit at all.
    ("resolver", "legacy", 0.213),
)


@dataclass(frozen=True)
class ResolverMixture:
    """Composition of a resolver deployment."""

    validators: tuple = DEFAULT_VALIDATOR_MIXTURE
    #: Fraction of deployed resolvers that validate at all. The paper saw
    #: ~5.5 % among open IPv4 responders; simulating millions of
    #: non-validators adds nothing, so experiments default to a higher
    #: fraction and report validator-relative shares like the paper does.
    validator_fraction: float = 0.7


@dataclass
class DeployedResolver:
    """One resolver instance in the measured population."""

    ip: str
    family: str              # "v4" | "v6"
    access: str              # "open" | "closed"
    network_id: str
    kind: str                # "resolver" | "copier" | "non-validating"
    policy_name: str
    host: object
    #: For closed resolvers: a source address inside their network segment
    #: that an Atlas-style probe can use.
    probe_source_ip: str = ""


class _ProbeEndpoint(Host):
    """A silent host owning the Atlas probe's source address."""

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        return None


def _pick(rng, mixture):
    total = sum(weight for __, __, weight in mixture)
    roll = rng.random() * total
    acc = 0.0
    for kind, policy, weight in mixture:
        acc += weight
        if roll <= acc:
            return kind, policy
    return mixture[-1][0], mixture[-1][1]


def _stratified_assignments(mixture, count, rng):
    """Deterministic largest-remainder allocation of *count* resolvers.

    I.i.d. sampling makes small deployments drift noticeably from the
    calibrated shares (the paper's percentages are population statistics,
    not per-resolver coin flips), so each (kind, policy) gets its exact
    proportional share, with the fractional remainders going to the
    largest leftovers. Placement order is shuffled.
    """
    n_validators = round(count * mixture.validator_fraction)
    weights = mixture.validators
    total = sum(weight for __, __, weight in weights)
    exact = [
        (kind, policy, n_validators * weight / total) for kind, policy, weight in weights
    ]
    floors = [(kind, policy, int(share)) for kind, policy, share in exact]
    assigned = sum(n for __, __, n in floors)
    remainders = sorted(
        range(len(exact)),
        key=lambda i: exact[i][2] - floors[i][2],
        reverse=True,
    )
    counts = [n for __, __, n in floors]
    for index in remainders[: n_validators - assigned]:
        counts[index] += 1
    # Rare-but-real behaviours (the paper's 418 query-copiers, the 92
    # Technitium instances) must have a witness in any deployment large
    # enough to afford one; steal the slot from the largest component.
    if n_validators >= 2 * len(weights):
        for index in range(len(counts)):
            if counts[index] == 0:
                counts[counts.index(max(counts))] -= 1
                counts[index] = 1
    assignments = []
    for (kind, policy, __), n in zip(weights, counts):
        assignments.extend([(kind, policy)] * n)
    assignments.extend([("non-validating", "legacy")] * (count - n_validators))
    rng.shuffle(assignments)
    return assignments


def deploy_resolvers(
    inet,
    open_v4=60,
    open_v6=15,
    closed_v4=15,
    closed_v6=10,
    mixture=None,
    rng=None,
    seed=53,
):
    """Deploy the resolver population onto the testbed network.

    Returns a list of :class:`DeployedResolver`. Closed resolvers each get
    a private network segment plus a registered probe source address.
    """
    mixture = mixture or ResolverMixture()
    rng = rng or random.Random(seed)
    deployed = []
    copier_upstreams = {}

    def _make_one(index, family, access, kind, policy_name):
        ipv6 = family == "v6"
        network_id = "public" if access == "open" else f"closed-{access}-{index}"

        if kind == "copier":
            upstream = copier_upstreams.get(policy_name)
            if upstream is None:
                upstream = inet.make_resolver(
                    VENDOR_POLICIES[policy_name], name=f"copier-upstream-{policy_name}"
                )
                copier_upstreams[policy_name] = upstream
            ip = inet.allocator.next_v6() if ipv6 else inet.allocator.next_v4()
            host = QueryCopyingForwarder(inet.network, ip, upstream.ip)
            inet.network.attach(ip, host, network_id=network_id)
        else:
            host = inet.make_resolver(
                VENDOR_POLICIES[policy_name],
                validate=(kind != "non-validating"),
                network_id=network_id,
                ipv6=ipv6,
                name=f"{access}-{family}-{policy_name}-{index}",
            )
            ip = host.ip

        probe_source = ""
        if access == "closed":
            probe_source = (
                inet.allocator.next_v6() if ipv6 else inet.allocator.next_v4()
            )
            inet.network.attach(probe_source, _ProbeEndpoint(), network_id=network_id)
        deployed.append(
            DeployedResolver(
                ip=ip,
                family=family,
                access=access,
                network_id=network_id,
                kind=kind,
                policy_name=policy_name,
                host=host,
                probe_source_ip=probe_source,
            )
        )

    for family, access, count in (
        ("v4", "open", open_v4),
        ("v6", "open", open_v6),
        ("v4", "closed", closed_v4),
        ("v6", "closed", closed_v6),
    ):
        assignments = _stratified_assignments(mixture, count, rng)
        for index, (kind, policy_name) in enumerate(assignments):
            _make_one(index, family, access, kind, policy_name)
    return deployed
