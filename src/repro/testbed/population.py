"""Synthetic domain and TLD populations, calibrated to §5.1 of the paper.

The generator is purely declarative: it produces :class:`DomainSpec` /
:class:`TldSpec` metadata. :mod:`repro.testbed.internet` turns specs into
real signed zones; the scanners then *measure* the hosted zones, so every
reported number flows through the same pipeline as the paper's.

Calibration targets (paper §5.1):

- 8.8 % of registered domains DNSSEC-enabled (26.6 M / 302 M);
- 58.9 % of DNSSEC-enabled domains NSEC3-enabled (15.5 M / 26.6 M);
- NSEC3 parameters via the operator mixtures of Table 2;
- 6.4 % of NSEC3-enabled domains with opt-out;
- TLDs: 1,354 / 1,449 DNSSEC-enabled, 1,302 NSEC3-enabled, 688 with zero
  iterations, 447 at exactly 100 (Identity Digital), 672 saltless,
  558 with 8-byte salts, 7 with 10-byte salts, 85.4 % opt-out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.testbed.operators import OPERATORS, normalized_param_mix

#: TLD label pool for synthetic TLDs beyond the explicit big ones.
_WORDS = (
    "alpha", "bravo", "cargo", "delta", "eagle", "forge", "gamma", "haven",
    "input", "jolly", "karma", "lemon", "magma", "noble", "ocean", "polar",
    "quark", "raven", "sigma", "tango", "umbra", "vivid", "wheat", "xenon",
    "yacht", "zebra",
)


@dataclass(frozen=True)
class DomainSpec:
    """Metadata describing one registered domain before hosting."""

    name: str
    tld: str
    operator: str
    dnssec: bool
    #: "nsec3", "nsec", or "" when unsigned.
    denial: str
    iterations: int = 0
    salt_length: int = 0
    opt_out: bool = False
    tranco_rank: int | None = None

    @property
    def nsec3(self):
        return self.denial == "nsec3"


@dataclass(frozen=True)
class TldSpec:
    """Metadata describing one top-level domain."""

    label: str
    dnssec: bool
    denial: str
    iterations: int = 0
    salt_length: int = 0
    opt_out: bool = False
    #: The registry services provider; the paper highlights Identity
    #: Digital's 447 TLDs at 100 iterations.
    registry: str = "generic"
    #: Whether the registry shares zone contents openly (CZDS-style).
    open_zone_data: bool = False


@dataclass
class PopulationConfig:
    """Knobs for the population generator (paper values as defaults)."""

    n_domains: int = 1000
    seed: int = 2024
    dnssec_rate: float = 0.088
    nsec3_given_dnssec: float = 0.589
    #: Opt-out among NSEC3-enabled registered domains (§5.1: 6.4 %).
    opt_out_rate: float = 0.064
    n_tlds: int = 1449
    tld_dnssec: int = 1354
    tld_nsec3: int = 1302
    tld_zero_iterations: int = 688
    tld_identity_digital: int = 447
    tld_saltless: int = 672
    tld_salt8: int = 558
    tld_salt10: int = 7
    tld_opt_out_rate: float = 0.854
    tld_open_zone_rate: float = 0.849
    #: Weights for assigning domains to the biggest TLDs.
    tld_popularity: tuple = (
        ("com", 0.42),
        ("net", 0.075),
        ("org", 0.065),
        ("de", 0.05),
        ("nl", 0.035),
        ("se", 0.03),
        ("ch", 0.025),
        ("fr", 0.02),
        ("shop", 0.015),
        ("online", 0.01),
    )


def scaled_config(n_domains, n_tlds):
    """A :class:`PopulationConfig` with TLD counts scaled from the paper.

    The paper measured 1,449 TLDs; a smaller testbed keeps the same
    proportions (DNSSEC share, zero-iteration share, salt mixture). This
    is *the* scaling rule of the CLI and of campaign workers — both must
    derive the identical population from ``(n_domains, n_tlds)``, or a
    supervised run would measure a different internet than the
    single-process run it must match byte-for-byte.
    """
    scale = n_tlds / 1449.0
    return PopulationConfig(
        n_domains=n_domains,
        n_tlds=n_tlds,
        tld_dnssec=round(1354 * scale),
        tld_nsec3=round(1302 * scale),
        tld_zero_iterations=round(688 * scale),
        tld_identity_digital=round(447 * scale),
        tld_saltless=round(672 * scale),
        tld_salt8=round(558 * scale),
        tld_salt10=max(1, round(7 * scale)),
    )


def _tld_labels(count):
    """Deterministic pool of TLD labels: real-looking, then synthetic."""
    base = [
        "com", "net", "org", "de", "nl", "se", "ch", "fr", "shop", "online",
        "info", "biz", "io", "co", "uk", "nu", "li", "bank", "app", "dev",
        "ru", "no",  # operator nameserver-brand TLDs (Table 2)
    ]
    labels = list(base)
    index = 0
    while len(labels) < count:
        word = _WORDS[index % len(_WORDS)]
        suffix = index // len(_WORDS)
        labels.append(f"{word}{suffix}" if suffix else word)
        index += 1
    return labels[:count]


def generate_tlds(config=None, rng=None):
    """Generate the TLD population (§5.1 TLD calibration).

    The TLDs that host most registered domains (``tld_popularity``) get the
    parameters their real counterparts use — zero-iteration saltless NSEC3
    with opt-out — so they come out of the zero-iteration budget; the rest
    of the counts are distributed over the remaining labels.
    """
    config = config or PopulationConfig()
    rng = rng or random.Random(config.seed)
    labels = _tld_labels(config.n_tlds)
    reserved = [label for label, __ in config.tld_popularity]
    other_labels = [label for label in labels if label not in set(reserved)]

    specs = [
        TldSpec(
            label,
            True,
            "nsec3",
            iterations=0,
            salt_length=0,
            opt_out=True,
            registry="generic",
            open_zone_data=True,
        )
        for label in reserved
    ]

    n_dnssec = config.tld_dnssec - len(reserved)
    n_nsec3 = config.tld_nsec3 - len(reserved)
    n_identity = config.tld_identity_digital
    n_zero = max(0, config.tld_zero_iterations - len(reserved))

    # Salt assignment within the remaining NSEC3-enabled TLDs (the reserved
    # ones already consumed `len(reserved)` of the saltless budget).
    salt_plan = (
        [0] * max(0, config.tld_saltless - len(reserved))
        + [8] * config.tld_salt8
        + [10] * config.tld_salt10
    )
    salt_plan += [rng.choice((2, 4, 6)) for __ in range(max(0, n_nsec3 - len(salt_plan)))]
    salt_plan = salt_plan[:n_nsec3]
    rng.shuffle(salt_plan)

    for index, label in enumerate(other_labels):
        if index >= n_dnssec:
            specs.append(TldSpec(label, False, ""))
            continue
        if index >= n_nsec3:
            specs.append(
                TldSpec(
                    label,
                    True,
                    "nsec",
                    open_zone_data=rng.random() < config.tld_open_zone_rate,
                )
            )
            continue
        if index < n_identity:
            iterations = 100
            registry = "identity-digital"
        elif index < n_identity + n_zero:
            iterations = 0
            registry = "generic"
        else:
            iterations = rng.choice((1, 1, 2, 3, 5, 8, 10))
            registry = "generic"
        specs.append(
            TldSpec(
                label,
                True,
                "nsec3",
                iterations=iterations,
                salt_length=salt_plan[index],
                opt_out=rng.random() < config.tld_opt_out_rate,
                registry=registry,
                open_zone_data=rng.random() < config.tld_open_zone_rate,
            )
        )
    return specs


def _pick_weighted(rng, mixture):
    """Pick (iterations, salt_length) from a normalised mixture."""
    roll = rng.random()
    acc = 0.0
    for weight, iterations, salt in mixture:
        acc += weight
        if roll <= acc:
            return iterations, salt
    return mixture[-1][1], mixture[-1][2]


def _domain_label(rng, index):
    word1 = _WORDS[rng.randrange(len(_WORDS))]
    word2 = _WORDS[rng.randrange(len(_WORDS))]
    return f"{word1}-{word2}-{index}"


class _StreamTables:
    """Per-config lookup tables shared by every per-index draw."""

    def __init__(self, config, tlds):
        self.config = config
        self.tlds = tlds
        tld_labels = [t.label for t in tlds]
        label_set = set(tld_labels)
        weighted = list(config.tld_popularity)
        self.tld_labels = tld_labels
        self.weighted = [
            (label, weight) for label, weight in weighted if label in label_set
        ]
        self.operator_mixes = {
            op.key: normalized_param_mix(op) for op in OPERATORS
        }
        self.operator_weights = [(op.key, op.share) for op in OPERATORS]
        self.operator_optout = {op.key: op.opt_out_rate for op in OPERATORS}


def _spec_at(tables, index):
    """Derive domain *index* of the population from its own seeded rng.

    Seeding ``random.Random`` with the string ``"{seed}/domain/{index}"``
    hashes it through SHA-512 (PYTHONHASHSEED-independent), so any index
    is computable in O(1) without generating its predecessors — the
    property that lets campaigns shard a multi-million-domain population
    by (start, stride) with no global list.
    """
    config = tables.config
    rng = random.Random(f"{config.seed}/domain/{index}")
    roll = rng.random()
    tld = None
    acc = 0.0
    for label, weight in tables.weighted:
        acc += weight
        if roll <= acc:
            tld = label
            break
    if tld is None:
        tld = tables.tld_labels[rng.randrange(len(tables.tld_labels))]
    name = f"{_domain_label(rng, index)}.{tld}"

    dnssec = rng.random() < config.dnssec_rate
    if not dnssec:
        return DomainSpec(name, tld, "generic-web", False, "")
    if rng.random() >= config.nsec3_given_dnssec:
        return DomainSpec(name, tld, "generic-web", True, "nsec")

    roll = rng.random()
    acc = 0.0
    operator = tables.operator_weights[-1][0]
    for key, share in tables.operator_weights:
        acc += share
        if roll <= acc:
            operator = key
            break
    iterations, salt_length = _pick_weighted(rng, tables.operator_mixes[operator])
    opt_out = rng.random() < tables.operator_optout[operator]
    return DomainSpec(
        name,
        tld,
        operator,
        True,
        "nsec3",
        iterations=iterations,
        salt_length=salt_length,
        opt_out=opt_out,
    )


def tail_domains():
    """The fixed long-tail exemplars appended to every population."""
    return [
        DomainSpec("tail-it500-a.com", "com", "other", True, "nsec3", 500, 8),
        DomainSpec("tail-it500-b.net", "net", "other", True, "nsec3", 500, 0),
        DomainSpec("tail-it200.org", "org", "other", True, "nsec3", 200, 8),
        DomainSpec("tail-salt160.com", "com", "other", True, "nsec3", 2, 160),
    ]


def population_size(config, include_tail=True):
    """Total stream length: generated domains plus the forced tail."""
    return config.n_domains + (len(tail_domains()) if include_tail else 0)


def iter_population(config=None, tlds=None, start=0, stride=1,
                    include_tail=True):
    """Yield :class:`DomainSpec` number ``start, start+stride, ...``.

    The stream order (and content) is identical to
    ``inject_tail_domains(generate_population(config, tlds=tlds))`` — the
    tail exemplars occupy indices ``n_domains .. n_domains+3`` — but no
    list is ever materialised, so memory stays O(1) at any population
    scale. ``(start, stride)`` selects a round-robin sub-stream, which is
    exactly the campaign supervisor's shard partition.
    """
    population = Population(config, tlds=tlds, include_tail=include_tail)
    yield from population.iter_shard(start, stride)


class Population:
    """A sequence view of the domain population, computed on demand.

    Behaves like the materialised list (``len``, indexing, iteration,
    equality of elements) while deriving every spec from its index, so
    holding a ``Population`` costs O(1) regardless of ``n_domains``.
    ``spec_for_name`` inverts the generator (the index is embedded in the
    first label), which is what lets authoritative servers materialise
    zones lazily on first query.
    """

    def __init__(self, config=None, tlds=None, include_tail=True):
        self.config = config or PopulationConfig()
        if tlds is None:
            tlds = generate_tlds(
                self.config, random.Random(self.config.seed + 1)
            )
        self.tlds = tlds
        self._tables = _StreamTables(self.config, tlds)
        self._tail = tail_domains() if include_tail else []
        self._tail_by_name = {spec.name: spec for spec in self._tail}

    def __len__(self):
        return self.config.n_domains + len(self._tail)

    def spec_at(self, index):
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index >= self.config.n_domains:
            return self._tail[index - self.config.n_domains]
        return _spec_at(self._tables, index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.spec_at(i) for i in range(*index.indices(len(self)))]
        return self.spec_at(index)

    def __iter__(self):
        return self.iter_shard(0, 1)

    def iter_shard(self, start, stride):
        for index in range(start, len(self), stride):
            yield self.spec_at(index)

    def spec_for_name(self, name):
        """The spec whose ``name`` matches, or ``None``.

        O(1): parses the embedded index out of the first label and
        verifies the recomputed spec round-trips to the same name (so a
        lookalike name that merely *ends* in digits cannot alias a real
        domain).
        """
        name = name.rstrip(".").lower()
        tail = self._tail_by_name.get(name)
        if tail is not None:
            return tail
        first_label, __, rest = name.partition(".")
        if not rest:
            return None
        index_text = first_label.rpartition("-")[2]
        if not index_text.isdigit():
            return None
        index = int(index_text)
        if index >= self.config.n_domains:
            return None
        spec = _spec_at(self._tables, index)
        return spec if spec.name == name else None


def generate_population(config=None, rng=None, tlds=None):
    """Generate the registered-domain population.

    Returns a list of :class:`DomainSpec`. Operator assignment follows
    Table 2 for NSEC3-enabled domains; NSEC-signed and unsigned domains go
    to generic web hosters (which Table 2 does not cover).

    This is the materialising front-end of :func:`iter_population`; the
    *rng* parameter is retained for signature compatibility but unused —
    every domain derives from its own index-seeded rng so the stream can
    be entered at any offset.
    """
    config = config or PopulationConfig()
    return list(iter_population(config, tlds=tlds, include_tail=False))


def inject_tail_domains(specs, config=None):
    """Force the long-tail exemplars §5.1 reports, regardless of scale.

    At paper scale the >150-iteration tail is 43 domains out of 15.5 M —
    invisible in a scaled-down sample. This helper appends a fixed set of
    tail domains (500 iterations, 160-byte salts) so tail-sensitive
    analyses and the probe experiments always have witnesses. The count is
    deliberately tiny and documented in EXPERIMENTS.md.
    """
    return list(specs) + tail_domains()
