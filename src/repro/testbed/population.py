"""Synthetic domain and TLD populations, calibrated to §5.1 of the paper.

The generator is purely declarative: it produces :class:`DomainSpec` /
:class:`TldSpec` metadata. :mod:`repro.testbed.internet` turns specs into
real signed zones; the scanners then *measure* the hosted zones, so every
reported number flows through the same pipeline as the paper's.

Calibration targets (paper §5.1):

- 8.8 % of registered domains DNSSEC-enabled (26.6 M / 302 M);
- 58.9 % of DNSSEC-enabled domains NSEC3-enabled (15.5 M / 26.6 M);
- NSEC3 parameters via the operator mixtures of Table 2;
- 6.4 % of NSEC3-enabled domains with opt-out;
- TLDs: 1,354 / 1,449 DNSSEC-enabled, 1,302 NSEC3-enabled, 688 with zero
  iterations, 447 at exactly 100 (Identity Digital), 672 saltless,
  558 with 8-byte salts, 7 with 10-byte salts, 85.4 % opt-out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.testbed.operators import OPERATORS, normalized_param_mix

#: TLD label pool for synthetic TLDs beyond the explicit big ones.
_WORDS = (
    "alpha", "bravo", "cargo", "delta", "eagle", "forge", "gamma", "haven",
    "input", "jolly", "karma", "lemon", "magma", "noble", "ocean", "polar",
    "quark", "raven", "sigma", "tango", "umbra", "vivid", "wheat", "xenon",
    "yacht", "zebra",
)


@dataclass(frozen=True)
class DomainSpec:
    """Metadata describing one registered domain before hosting."""

    name: str
    tld: str
    operator: str
    dnssec: bool
    #: "nsec3", "nsec", or "" when unsigned.
    denial: str
    iterations: int = 0
    salt_length: int = 0
    opt_out: bool = False
    tranco_rank: int | None = None

    @property
    def nsec3(self):
        return self.denial == "nsec3"


@dataclass(frozen=True)
class TldSpec:
    """Metadata describing one top-level domain."""

    label: str
    dnssec: bool
    denial: str
    iterations: int = 0
    salt_length: int = 0
    opt_out: bool = False
    #: The registry services provider; the paper highlights Identity
    #: Digital's 447 TLDs at 100 iterations.
    registry: str = "generic"
    #: Whether the registry shares zone contents openly (CZDS-style).
    open_zone_data: bool = False


@dataclass
class PopulationConfig:
    """Knobs for the population generator (paper values as defaults)."""

    n_domains: int = 1000
    seed: int = 2024
    dnssec_rate: float = 0.088
    nsec3_given_dnssec: float = 0.589
    #: Opt-out among NSEC3-enabled registered domains (§5.1: 6.4 %).
    opt_out_rate: float = 0.064
    n_tlds: int = 1449
    tld_dnssec: int = 1354
    tld_nsec3: int = 1302
    tld_zero_iterations: int = 688
    tld_identity_digital: int = 447
    tld_saltless: int = 672
    tld_salt8: int = 558
    tld_salt10: int = 7
    tld_opt_out_rate: float = 0.854
    tld_open_zone_rate: float = 0.849
    #: Weights for assigning domains to the biggest TLDs.
    tld_popularity: tuple = (
        ("com", 0.42),
        ("net", 0.075),
        ("org", 0.065),
        ("de", 0.05),
        ("nl", 0.035),
        ("se", 0.03),
        ("ch", 0.025),
        ("fr", 0.02),
        ("shop", 0.015),
        ("online", 0.01),
    )


def scaled_config(n_domains, n_tlds):
    """A :class:`PopulationConfig` with TLD counts scaled from the paper.

    The paper measured 1,449 TLDs; a smaller testbed keeps the same
    proportions (DNSSEC share, zero-iteration share, salt mixture). This
    is *the* scaling rule of the CLI and of campaign workers — both must
    derive the identical population from ``(n_domains, n_tlds)``, or a
    supervised run would measure a different internet than the
    single-process run it must match byte-for-byte.
    """
    scale = n_tlds / 1449.0
    return PopulationConfig(
        n_domains=n_domains,
        n_tlds=n_tlds,
        tld_dnssec=round(1354 * scale),
        tld_nsec3=round(1302 * scale),
        tld_zero_iterations=round(688 * scale),
        tld_identity_digital=round(447 * scale),
        tld_saltless=round(672 * scale),
        tld_salt8=round(558 * scale),
        tld_salt10=max(1, round(7 * scale)),
    )


def _tld_labels(count):
    """Deterministic pool of TLD labels: real-looking, then synthetic."""
    base = [
        "com", "net", "org", "de", "nl", "se", "ch", "fr", "shop", "online",
        "info", "biz", "io", "co", "uk", "nu", "li", "bank", "app", "dev",
        "ru", "no",  # operator nameserver-brand TLDs (Table 2)
    ]
    labels = list(base)
    index = 0
    while len(labels) < count:
        word = _WORDS[index % len(_WORDS)]
        suffix = index // len(_WORDS)
        labels.append(f"{word}{suffix}" if suffix else word)
        index += 1
    return labels[:count]


def generate_tlds(config=None, rng=None):
    """Generate the TLD population (§5.1 TLD calibration).

    The TLDs that host most registered domains (``tld_popularity``) get the
    parameters their real counterparts use — zero-iteration saltless NSEC3
    with opt-out — so they come out of the zero-iteration budget; the rest
    of the counts are distributed over the remaining labels.
    """
    config = config or PopulationConfig()
    rng = rng or random.Random(config.seed)
    labels = _tld_labels(config.n_tlds)
    reserved = [label for label, __ in config.tld_popularity]
    other_labels = [label for label in labels if label not in set(reserved)]

    specs = [
        TldSpec(
            label,
            True,
            "nsec3",
            iterations=0,
            salt_length=0,
            opt_out=True,
            registry="generic",
            open_zone_data=True,
        )
        for label in reserved
    ]

    n_dnssec = config.tld_dnssec - len(reserved)
    n_nsec3 = config.tld_nsec3 - len(reserved)
    n_identity = config.tld_identity_digital
    n_zero = max(0, config.tld_zero_iterations - len(reserved))

    # Salt assignment within the remaining NSEC3-enabled TLDs (the reserved
    # ones already consumed `len(reserved)` of the saltless budget).
    salt_plan = (
        [0] * max(0, config.tld_saltless - len(reserved))
        + [8] * config.tld_salt8
        + [10] * config.tld_salt10
    )
    salt_plan += [rng.choice((2, 4, 6)) for __ in range(max(0, n_nsec3 - len(salt_plan)))]
    salt_plan = salt_plan[:n_nsec3]
    rng.shuffle(salt_plan)

    for index, label in enumerate(other_labels):
        if index >= n_dnssec:
            specs.append(TldSpec(label, False, ""))
            continue
        if index >= n_nsec3:
            specs.append(
                TldSpec(
                    label,
                    True,
                    "nsec",
                    open_zone_data=rng.random() < config.tld_open_zone_rate,
                )
            )
            continue
        if index < n_identity:
            iterations = 100
            registry = "identity-digital"
        elif index < n_identity + n_zero:
            iterations = 0
            registry = "generic"
        else:
            iterations = rng.choice((1, 1, 2, 3, 5, 8, 10))
            registry = "generic"
        specs.append(
            TldSpec(
                label,
                True,
                "nsec3",
                iterations=iterations,
                salt_length=salt_plan[index],
                opt_out=rng.random() < config.tld_opt_out_rate,
                registry=registry,
                open_zone_data=rng.random() < config.tld_open_zone_rate,
            )
        )
    return specs


def _pick_weighted(rng, mixture):
    """Pick (iterations, salt_length) from a normalised mixture."""
    roll = rng.random()
    acc = 0.0
    for weight, iterations, salt in mixture:
        acc += weight
        if roll <= acc:
            return iterations, salt
    return mixture[-1][1], mixture[-1][2]


def _domain_label(rng, index):
    word1 = _WORDS[rng.randrange(len(_WORDS))]
    word2 = _WORDS[rng.randrange(len(_WORDS))]
    return f"{word1}-{word2}-{index}"


def generate_population(config=None, rng=None, tlds=None):
    """Generate the registered-domain population.

    Returns a list of :class:`DomainSpec`. Operator assignment follows
    Table 2 for NSEC3-enabled domains; NSEC-signed and unsigned domains go
    to generic web hosters (which Table 2 does not cover).
    """
    config = config or PopulationConfig()
    rng = rng or random.Random(config.seed)
    if tlds is None:
        tlds = generate_tlds(config, random.Random(config.seed + 1))
    tld_labels = [t.label for t in tlds]
    weighted = list(config.tld_popularity)
    weighted_labels = [label for label, __ in weighted if label in set(tld_labels)]
    weight_values = [w for label, w in weighted if label in set(tld_labels)]
    rest_weight = max(0.0, 1.0 - sum(weight_values))

    operator_mixes = {
        op.key: normalized_param_mix(op) for op in OPERATORS
    }
    operator_weights = [(op.key, op.share) for op in OPERATORS]
    operator_optout = {op.key: op.opt_out_rate for op in OPERATORS}

    specs = []
    for index in range(config.n_domains):
        roll = rng.random()
        tld = None
        acc = 0.0
        for label, weight in zip(weighted_labels, weight_values):
            acc += weight
            if roll <= acc:
                tld = label
                break
        if tld is None:
            tld = tld_labels[rng.randrange(len(tld_labels))]
        name = f"{_domain_label(rng, index)}.{tld}"

        dnssec = rng.random() < config.dnssec_rate
        if not dnssec:
            specs.append(DomainSpec(name, tld, "generic-web", False, ""))
            continue
        if rng.random() >= config.nsec3_given_dnssec:
            specs.append(DomainSpec(name, tld, "generic-web", True, "nsec"))
            continue

        roll = rng.random()
        acc = 0.0
        operator = operator_weights[-1][0]
        for key, share in operator_weights:
            acc += share
            if roll <= acc:
                operator = key
                break
        iterations, salt_length = _pick_weighted(rng, operator_mixes[operator])
        opt_out = rng.random() < operator_optout[operator]
        specs.append(
            DomainSpec(
                name,
                tld,
                operator,
                True,
                "nsec3",
                iterations=iterations,
                salt_length=salt_length,
                opt_out=opt_out,
            )
        )
    return specs


def inject_tail_domains(specs, config=None):
    """Force the long-tail exemplars §5.1 reports, regardless of scale.

    At paper scale the >150-iteration tail is 43 domains out of 15.5 M —
    invisible in a scaled-down sample. This helper appends a fixed set of
    tail domains (500 iterations, 160-byte salts) so tail-sensitive
    analyses and the probe experiments always have witnesses. The count is
    deliberately tiny and documented in EXPERIMENTS.md.
    """
    tail = [
        DomainSpec("tail-it500-a.com", "com", "other", True, "nsec3", 500, 8),
        DomainSpec("tail-it500-b.net", "net", "other", True, "nsec3", 500, 0),
        DomainSpec("tail-it200.org", "org", "other", True, "nsec3", 200, 8),
        DomainSpec("tail-salt160.com", "com", "other", True, "nsec3", 2, 160),
    ]
    return list(specs) + tail
