"""Authoritative operator profiles — the paper's Table 2.

Each profile carries the operator's share of NSEC3-enabled domains and the
NSEC3 parameter mixture observed for the domains it exclusively serves
(``(weight, iterations, salt_length)``). The residual ``other`` profile is
calibrated so the *aggregate* population reproduces §5.1: 12.2 % of
NSEC3-enabled domains with zero iterations, 8.6 % without salt, the
99.9th percentile at ≤25 iterations, and a long tail reaching 500.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatorProfile:
    """One authoritative DNS operator."""

    key: str
    display: str
    #: Fraction of all NSEC3-enabled domains served exclusively (Table 2).
    share: float
    #: NSEC3 parameter mixture: (weight, additional iterations, salt bytes).
    param_mix: tuple
    #: Branded nameserver domain, e.g. squarespacedns.example.
    ns_domain: str = ""
    #: Fraction of served NSEC3 domains with the opt-out flag set.
    opt_out_rate: float = 0.0

    def ns_names(self):
        return (f"ns1.{self.ns_domain}.", f"ns2.{self.ns_domain}.")


#: Table 2 of the paper. Nameserver domains are synthetic equivalents of the
#: real brands (kept recognisable but clearly fake).
OPERATORS = (
    OperatorProfile(
        key="squarespace",
        display="Squarespace",
        share=0.394,
        param_mix=((1.0, 1, 8),),
        ns_domain="squarespacedns.com",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="one.com",
        display="one.com",
        share=0.095,
        param_mix=((0.40, 5, 5), (0.30, 5, 4), (0.15, 1, 2), (0.15, 1, 4)),
        ns_domain="onecomdns.net",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="ovhcloud",
        display="OVHcloud",
        share=0.084,
        param_mix=((1.0, 8, 8),),
        ns_domain="ovhclouddns.net",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="wix.com",
        display="Wix.com",
        share=0.050,
        param_mix=((1.0, 1, 8),),
        ns_domain="wixdns.net",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="transip",
        display="TransIP",
        share=0.042,
        # 0.3 % of TransIP domains still show the pre-2021 value of 100.
        param_mix=((0.997, 0, 8), (0.003, 100, 8)),
        ns_domain="transipdns.net",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="loopia",
        display="Loopia",
        share=0.036,
        param_mix=((1.0, 1, 1),),
        ns_domain="loopiadns.se",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="domainname.shop",
        display="domainname.shop",
        share=0.027,
        param_mix=((1.0, 0, 0),),
        ns_domain="domainnameshopdns.no",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="timeweb",
        display="TimeWeb",
        share=0.021,
        param_mix=((1.0, 3, 0),),
        ns_domain="timewebdns.ru",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="hostnet",
        display="Hostnet",
        share=0.015,
        param_mix=((0.7, 1, 4), (0.3, 0, 0)),
        ns_domain="hostnetdns.nl",
        opt_out_rate=0.02,
    ),
    OperatorProfile(
        key="hostpoint",
        display="Hostpoint",
        share=0.013,
        param_mix=((1.0, 1, 40),),
        ns_domain="hostpointdns.ch",
        opt_out_rate=0.02,
    ),
    # Residual 22.3 % of NSEC3-enabled domains: many small operators.
    # The mixture is calibrated so aggregate shares match §5.1:
    #   zero iterations: 0.394*0 + ... + other_share * w0 = 0.122
    #     fixed operators contribute 0.042*0.997 + 0.027 + 0.015*0.3 = 0.0733
    #     → w0 = (0.122 - 0.0733) / 0.223 ≈ 0.218
    #   no salt: fixed contribute 0.027 + 0.021 + 0.0045 = 0.0525
    #     → saltless weight ≈ (0.086 - 0.0525) / 0.223 ≈ 0.150
    OperatorProfile(
        key="other",
        display="(other operators)",
        share=0.223,
        param_mix=(
            (0.090, 0, 0),     # compliant: 0 iterations, no salt
            (0.128, 0, 8),     # zero iterations but salted
            (0.060, 1, 0),     # saltless, 1 iteration
            (0.240, 1, 8),
            (0.150, 2, 8),
            (0.100, 5, 8),
            (0.090, 10, 8),
            (0.060, 12, 4),
            (0.040, 15, 16),
            (0.030, 20, 8),
            (0.0105, 25, 8),
            # The >25 tail: ~0.1 % of NSEC3-enabled domains in the paper.
            (0.0004, 50, 8),
            (0.0003, 100, 8),
            (0.00008, 150, 8),
            (0.00006, 200, 8),   # the 43 domains above 150...
            (0.00003, 300, 160), # ...including 9 with 160-byte salts
            (0.00003, 500, 8),   # ...and 12 at 500, the maximum observed
        ),
        ns_domain="anycastdns.org",
        opt_out_rate=0.18,
    ),
)

OPERATORS_BY_KEY = {op.key: op for op in OPERATORS}

#: Operators whose domains appear in Table 2 (everything except "other").
TABLE2_OPERATORS = tuple(op for op in OPERATORS if op.key != "other")


def normalized_param_mix(profile):
    """The profile's mixture with weights normalised to sum to 1."""
    total = sum(w for w, __, __ in profile.param_mix)
    return tuple((w / total, it, salt) for w, it, salt in profile.param_mix)
