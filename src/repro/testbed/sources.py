"""Domain-list curation: the paper's §4.1 data-collection stage.

"We curate a large list of registered domain names from different sources,
including generic TLD zone files from ICANN CZDS, ccTLD zone files
downloaded via AXFR for .ch, .nu, .se and .li, Google Certificate
Transparency logs, as well as a passive DNS feed from SIE Europe. All the
entries are aggregated and deduplicated, resulting in 302 M unique
registered domain names."

Each source sees a different, overlapping slice of the registered-domain
universe, through a different lens:

- **CZDS** — complete gTLD zone files, but only for registries sharing
  them (the ``open_zone_data`` flag on TLD specs);
- **AXFR** — complete ccTLD zones, but only where the registry allows
  transfers (we wire up the paper's four);
- **CT logs** — any domain that obtained a certificate, seen as
  certificate subject names (often ``www.``-prefixed);
- **passive DNS** — resolver-observed FQDNs: deep subdomains that must be
  reduced to registered domains, plus junk that must be filtered.

:func:`curate_domain_list` replays the aggregation and reports per-source
and total coverage of the ground-truth population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.scanner.axfr import TransferRefused, axfr

#: The ccTLDs the paper could transfer.
AXFR_CCTLDS = ("ch", "nu", "se", "li")


def enable_paper_axfr(inet, labels=AXFR_CCTLDS):
    """Mark the paper's four ccTLD zones as transferable on their server."""
    enabled = []
    for label in labels:
        zone = inet.tld_zones.get(label)
        if zone is None:
            continue
        for server in _servers_hosting(inet, zone):
            server.axfr_allowed.add(zone.origin)
        enabled.append(label)
    return enabled


def _servers_hosting(inet, zone):
    """All attached servers hosting *zone* (TLDs live on the registry)."""
    servers = []
    seen = set()
    for ip in inet.network.addresses():
        host = inet.network.host_at(ip)
        if host is None or id(host) in seen:
            continue
        seen.add(id(host))
        if getattr(host, "zones", None) and zone.origin in host.zones:
            servers.append(host)
    return servers


def collect_czds(inet):
    """gTLD zone files from registries that share them (CZDS model).

    CZDS is out-of-band file distribution, so this reads the zone objects
    directly — exactly as unpacking a downloaded zone file would — but
    only for TLDs whose spec says ``open_zone_data``.
    """
    names = set()
    covered_tlds = []
    for spec in inet.tld_specs:
        if not spec.open_zone_data:
            continue
        zone = inet.tld_zones.get(spec.label)
        if zone is None:
            continue
        covered_tlds.append(spec.label)
        for cut in zone.delegation_points():
            names.add(cut.to_text().rstrip("."))
    return names, covered_tlds


def collect_axfr(inet, source_ip, labels=AXFR_CCTLDS):
    """ccTLD zone files via real AXFR over the simulated network."""
    names = set()
    transferred = []
    refused = []
    for label in labels:
        zone = inet.tld_zones.get(label)
        if zone is None:
            continue
        server_ip = _registry_ip(inet, zone)
        if server_ip is None:
            continue
        try:
            transfer = axfr(inet.network, source_ip, server_ip, label)
        except TransferRefused:
            refused.append(label)
            continue
        names.update(transfer.delegated_names())
        transferred.append(label)
    return names, transferred, refused


def _registry_ip(inet, zone):
    for ip in inet.network.addresses(ipv6=False):
        host = inet.network.host_at(ip)
        if getattr(host, "zones", None) and zone.origin in host.zones:
            return ip
    return None


def ct_log_feed(domain_specs, rng=None, coverage=0.85, seed=17):
    """Certificate Transparency view: cert subject names for most domains.

    Web-era domains almost all hold certificates; CT logs show them as
    ``example.com`` and/or ``www.example.com`` entries.
    """
    rng = rng or random.Random(seed)
    entries = set()
    for spec in domain_specs:
        if rng.random() >= coverage:
            continue
        entries.add(spec.name)
        if rng.random() < 0.8:
            entries.add(f"www.{spec.name}")
    return entries


def passive_dns_feed(domain_specs, rng=None, coverage=0.6, seed=18):
    """Passive-DNS view: resolver-observed FQDNs, deep and noisy."""
    rng = rng or random.Random(seed)
    labels = ("www", "mail", "api", "cdn", "app", "m", "ns1", "imap")
    entries = set()
    for spec in domain_specs:
        if rng.random() >= coverage:
            continue
        depth = rng.randrange(1, 4)
        prefix = ".".join(rng.choice(labels) for __ in range(depth))
        entries.add(f"{prefix}.{spec.name}")
    # Observed junk that is not a registered domain at all.
    for index in range(max(1, len(domain_specs) // 50)):
        entries.add(f"ghost-{index}.invalid")
    return entries


def registered_domain_of(fqdn, known_tlds):
    """Reduce an observed FQDN to its registered domain (label + TLD).

    The real pipeline uses the Public Suffix List; the synthetic namespace
    only has single-label public suffixes, so the reduction is the last
    two labels — when the suffix is a known TLD.
    """
    labels = [l for l in fqdn.lower().rstrip(".").split(".") if l]
    if len(labels) < 2 or labels[-1] not in known_tlds:
        return None
    return ".".join(labels[-2:])


@dataclass
class CurationResult:
    """The curated list plus per-source accounting."""

    domains: list
    per_source: dict = field(default_factory=dict)
    ground_truth_coverage: float = 0.0
    duplicates_removed: int = 0

    def __len__(self):
        return len(self.domains)


def curate_domain_list(inet, source_ip, rng=None):
    """Aggregate all four sources and deduplicate (the 302 M-list stage)."""
    rng = rng or random.Random(4)
    known_tlds = {spec.label for spec in inet.tld_specs}

    czds_names, czds_tlds = collect_czds(inet)
    axfr_names, transferred, refused = collect_axfr(inet, source_ip)
    ct_entries = ct_log_feed(inet.domain_specs, rng)
    pdns_entries = passive_dns_feed(inet.domain_specs, rng)

    ct_names = {
        reduced
        for entry in ct_entries
        if (reduced := registered_domain_of(entry, known_tlds))
    }
    pdns_names = {
        reduced
        for entry in pdns_entries
        if (reduced := registered_domain_of(entry, known_tlds))
    }

    total_raw = len(czds_names) + len(axfr_names) + len(ct_names) + len(pdns_names)
    merged = czds_names | axfr_names | ct_names | pdns_names
    # Only delegations that exist count as registered domains; the feeds
    # can contain lies (expired names, typos), which resolution later weeds
    # out — here we keep them, as the paper's list also contains dead names.
    truth = {spec.name for spec in inet.domain_specs}
    coverage = len(merged & truth) / len(truth) if truth else 0.0
    return CurationResult(
        domains=sorted(merged),
        per_source={
            "czds": len(czds_names),
            "axfr": len(axfr_names),
            "ct_logs": len(ct_names),
            "passive_dns": len(pdns_names),
            "czds_tlds": len(czds_tlds),
            "axfr_transferred": transferred,
            "axfr_refused": refused,
        },
        ground_truth_coverage=coverage,
        duplicates_removed=total_raw - len(merged),
    )
