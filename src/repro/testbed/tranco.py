"""A synthetic Tranco-style popularity ranking (paper Figure 2).

The paper intersects the Tranco 1 M list with its NSEC3-enabled domains and
finds (a) compliance uniformly distributed across ranks, and (b) popular
domains more compliant than the general population (22.8 % zero-iteration
vs 12.2 % overall; 23.6 % saltless vs 8.6 %).

We reproduce both properties: ranks are assigned uniformly at random (which
makes the rank CDF of any subpopulation uniform), while *membership* in the
ranked list is weighted toward compliant domains to match the headline
ratios.
"""

from __future__ import annotations

import random

#: Weight boosts calibrated to the paper's popular-vs-overall ratios.
ZERO_ITERATION_BOOST = 2.4
SALTLESS_BOOST = 3.2


def assign_tranco_ranks(specs, list_size=None, rng=None, seed=588):
    """Attach Tranco ranks to a weighted sample of *specs*.

    Returns a new list of :class:`~repro.testbed.population.DomainSpec`
    with ``tranco_rank`` set for the sampled domains (1-based, dense).
    *list_size* defaults to a third of the population.
    """
    from dataclasses import replace

    rng = rng or random.Random(seed)
    if list_size is None:
        list_size = max(1, len(specs) // 3)
    list_size = min(list_size, len(specs))

    weights = []
    for spec in specs:
        weight = 1.0
        if spec.nsec3:
            if spec.iterations == 0:
                weight *= ZERO_ITERATION_BOOST
            if spec.salt_length == 0:
                weight *= SALTLESS_BOOST
        weights.append(weight)

    order = list(range(len(specs)))
    # Weighted sample without replacement via exponential sort keys.
    keyed = sorted(
        order, key=lambda i: rng.expovariate(1.0) / weights[i]
    )
    chosen = keyed[:list_size]
    ranks = list(range(1, list_size + 1))
    rng.shuffle(ranks)

    ranked = list(specs)
    for rank, index in zip(ranks, chosen):
        ranked[index] = replace(ranked[index], tranco_rank=rank)
    return ranked
