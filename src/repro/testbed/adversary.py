"""Adversarial zone generator: resource-exhaustion workloads for resolvers.

Two attack families, both deployed as correctly-delegated, DNSSEC-valid
children of a dedicated lab domain so that a validating resolver walks
into them exactly as it would any signed zone:

- **NSEC3 encloser attack** (CVE-2023-50868): zones signed with very high
  NSEC3 iteration counts and a maximum-length salt. Every unique
  non-existent name forces the resolver to hash the query name once per
  closest-encloser candidate plus the three proof owners — each hash
  costing ``iterations + 1`` SHA-1 passes over ``name | salt``. Modelled
  on the Goethe-Universität NSEC3-Encloser-Attack testbed, which drives
  BIND/Unbound with exactly this zone shape.

- **KeyTrap-style key-tag collisions** (after Heftrig et al., 2024): a
  wildcard zone whose apex DNSKEY RRset is padded with forged keys that
  all collide with the genuine ZSK's key tag, while the wildcard answer
  carries garbage RRSIGs ahead of the real one. Key tags are the only
  pre-filter a validator has, so every (garbage signature × colliding
  key) pair costs one full signature verification before the genuine
  pair finally succeeds.

Both zones answer every probe *correctly* in the end — an unguarded
resolver returns NOERROR/NXDOMAIN with AD after burning the work, which
is precisely why per-query budgets (:mod:`repro.resolver.guard`) and not
validity checks are the defence.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

from repro.crypto.keys import make_ds
from repro.dns.name import Name
from repro.dns.rdata.dnssec import DNSKEY, FLAG_ZONE, PROTOCOL_DNSSEC, RRSIG
from repro.dns.types import RdataType
from repro.dnssec.signer import make_rrsig_rrset, sign_rrset
from repro.resolver.policy import RFC5155_MAX_ITERATIONS
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

PARENT_DOMAIN = "nsec3-attack-lab.com"


def attack_qname(kind, unique=""):
    """FQDN to query for attack zone *kind* with a cache-busting label.

    Module-level (no :class:`AttackZoneSet` required) so traffic
    generators — the service-mode loadgen in particular — can build
    attack streams against an already-deployed lab without holding zone
    handles.
    """
    prefix = f"{unique}." if unique else ""
    return f"{prefix}{kind}.{PARENT_DOMAIN}"


def default_attack_kinds(encloser_iterations=None):
    """The child-zone labels :func:`build_attack_zones` deploys by default."""
    iterations = ENCLOSER_ITERATIONS if encloser_iterations is None else encloser_iterations
    return [f"encloser-{min(int(i), RFC5155_MAX_ITERATIONS)}" for i in iterations] + [
        "keytrap"
    ]

#: Iteration counts for the encloser-attack children (capped at the
#: RFC 5155 ceiling — beyond it every resolver may answer insecurely
#: without hashing, which defeats the attack).
ENCLOSER_ITERATIONS = (500,)

#: Salt length for encloser zones. The salt is appended to *every* hash
#: pass, so a long salt multiplies per-iteration cost (~3 SHA-1 block
#: compressions per iteration at 128 bytes versus 1 with no salt).
ENCLOSER_SALT_LENGTH = 128

#: Forged DNSKEYs colliding with the ZSK tag in the KeyTrap zone.
KEYTRAP_FAKE_KEYS = 8

#: Garbage RRSIGs placed ahead of the genuine wildcard signature.
KEYTRAP_GARBAGE_SIGS = 8


@dataclass
class AttackZoneSet:
    """Handles to the deployed attacker infrastructure."""

    parent_name: Name
    server: AuthoritativeServer
    server_ips: tuple
    zones: dict = field(default_factory=dict)

    def attack_name(self, kind, unique=""):
        """FQDN to query for attack zone *kind* with a cache-busting label."""
        return attack_qname(kind, unique)

    def attack_kinds(self):
        """Child zone labels in deterministic probing order."""
        return sorted(label for label in self.zones if label != "@")

    @property
    def query_log(self):
        return self.server.log


def forge_colliding_dnskey(target_tag, algorithm, rng, flags=FLAG_ZONE):
    """Forge a DNSKEY whose RFC 4034 key tag equals *target_tag*.

    The key tag is a 16-bit ones'-complement-style checksum over the
    rdata wire form, so a collision is constructed arithmetically: build
    a plausible RSA public key (exponent 65537, random 512-bit modulus)
    whose wire prefix ends on a 16-bit boundary, then solve for the final
    checksum word. The forged key parses cleanly and reaches real RSA
    math — verification just always fails, which is the point.
    """
    for __ in range(256):
        # exponent-length byte, e=65537, then 62 random modulus bytes;
        # the 2-byte tweak below completes a 64-byte (512-bit) modulus.
        body = b"\x03\x01\x00\x01" + bytes(rng.randrange(256) for __ in range(62))
        prefix = struct.pack("!HBB", flags, PROTOCOL_DNSSEC, algorithm) + body
        acc = 0
        for index, byte in enumerate(prefix):
            acc += byte << 8 if index % 2 == 0 else byte
        # len(prefix) is even, so the tweak occupies exactly one checksum
        # word: tag(prefix + tweak) folds acc + tweak.
        for tweak in range(0x10000):
            total = acc + tweak
            if (total + ((total >> 16) & 0xFFFF)) & 0xFFFF == target_tag:
                key = DNSKEY(
                    flags, PROTOCOL_DNSSEC, algorithm, body + tweak.to_bytes(2, "big")
                )
                if key.key_tag() == target_tag:
                    return key
                # A carry boundary skipped this residue; redraw the modulus.
                break
    raise ValueError(f"could not forge a key tag colliding with {target_tag}")


def _encloser_child(label, parent, server_v4, server_v6, rng):
    """An NSEC3 zone shaped to maximise closest-encloser proof cost.

    Long-labelled filler names fatten the hash input (more SHA-1 blocks
    per pass) and populate the NSEC3 chain; no wildcard exists, so every
    unique query yields a full NXDOMAIN closest-encloser proof.
    """
    origin = f"{label}.{parent}"
    builder = (
        ZoneBuilder(origin)
        .soa(f"ns1.{origin}", f"hostmaster.{origin}")
        .ns(f"ns1.{origin}.")
        .a(f"ns1.{origin}.", server_v4)
        .aaaa(f"ns1.{origin}.", server_v6)
        .a("@", "203.0.113.66")
    )
    for index in range(14):
        filler = "x" * 40 + f"-{index:02d}"
        builder.a(filler, f"203.0.113.{index + 100}")
    return builder.build()


def _keytrap_child(label, parent, server_v4, server_v6):
    """A wildcard zone: every unique name synthesises a signed answer."""
    origin = f"{label}.{parent}"
    return (
        ZoneBuilder(origin)
        .soa(f"ns1.{origin}", f"hostmaster.{origin}")
        .ns(f"ns1.{origin}.")
        .a(f"ns1.{origin}.", server_v4)
        .aaaa(f"ns1.{origin}.", server_v6)
        .a("@", "203.0.113.66")
        .wildcard_a("203.0.113.66")
        .build()
    )


def _sabotage_keytrap(zone, rng, fake_keys=KEYTRAP_FAKE_KEYS, garbage_sigs=KEYTRAP_GARBAGE_SIGS):
    """Install the KeyTrap amplifier into an already-signed wildcard zone.

    Afterwards each unique wildcard answer costs the validator roughly
    ``garbage_sigs × (fake_keys + 1) + 1`` signature verifications: every
    garbage RRSIG is tried against every tag-colliding key before the
    genuine signature finally validates. The DNSKEY RRset is re-signed by
    the KSK so the sabotaged zone remains fully DNSSEC-valid.
    """
    origin = zone.origin
    ksk, zsk = zone.keys
    dnskey_rrset = zone.get_rrset(origin, RdataType.DNSKEY)
    for __ in range(fake_keys):
        dnskey_rrset.add(forge_colliding_dnskey(zsk.key_tag, zsk.algorithm, rng))
    zone.rrsigs[(origin, int(RdataType.DNSKEY))] = make_rrsig_rrset(
        dnskey_rrset, [sign_rrset(dnskey_rrset, ksk, origin)]
    )

    wildcard_owner = origin.prepend(b"*")
    sig_rrset = zone.rrsigs[(wildcard_owner, int(RdataType.A))]
    real = sig_rrset.rdatas[0]
    garbage = [
        RRSIG(
            real.type_covered,
            real.algorithm,
            real.labels,
            real.original_ttl,
            real.expiration,
            real.inception,
            real.key_tag,
            real.signer,
            bytes(rng.randrange(256) for __ in range(len(real.signature))),
        )
        for __ in range(garbage_sigs)
    ]
    # Validators try signatures in RRset order; the genuine one goes last.
    sig_rrset.rdatas[:0] = garbage


def build_attack_zones(
    inet,
    seed=50868,
    encloser_iterations=ENCLOSER_ITERATIONS,
    fake_keys=KEYTRAP_FAKE_KEYS,
    garbage_sigs=KEYTRAP_GARBAGE_SIGS,
):
    """Deploy the attacker infrastructure into an existing Internet testbed.

    Mirrors :func:`repro.testbed.rfc9276_wild.build_probe_zones`: a
    dedicated authoritative server hosts the lab parent and children, the
    delegation is inserted into ``.com``, and ``.com`` is re-signed with
    its existing keys. Returns the :class:`AttackZoneSet`.
    """
    rng = random.Random(seed)
    network = inet.network
    server = AuthoritativeServer("nsec3-attack-lab", network)
    v4, v6 = inet.allocator.next_v4(), inet.allocator.next_v6()
    network.attach(v4, server)
    network.attach(v6, server)

    parent = Name.from_text(PARENT_DOMAIN)
    parent_builder = (
        ZoneBuilder(PARENT_DOMAIN)
        .soa(f"ns1.{PARENT_DOMAIN}", f"hostmaster.{PARENT_DOMAIN}")
        .ns(f"ns1.{PARENT_DOMAIN}.")
        .a("ns1", v4)
        .aaaa("ns1", v6)
        .a("@", "203.0.113.66")
    )

    attack_set = AttackZoneSet(parent, server, (v4, v6))
    child_entries = []

    for iterations in encloser_iterations:
        iterations = min(int(iterations), RFC5155_MAX_ITERATIONS)
        label = f"encloser-{iterations}"
        zone = _encloser_child(label, PARENT_DOMAIN, v4, v6, rng)
        salt = bytes(rng.randrange(256) for __ in range(ENCLOSER_SALT_LENGTH))
        ksk, zsk = inet.key_pool.next_pair()
        sign_zone(
            zone,
            SigningPolicy(nsec3=Nsec3Params(iterations, salt)),
            ksk=ksk,
            zsk=zsk,
            rng=rng,
        )
        server.add_zone(zone)
        attack_set.zones[label] = zone
        child_entries.append((label, zone))

    keytrap = _keytrap_child("keytrap", PARENT_DOMAIN, v4, v6)
    ksk, zsk = inet.key_pool.next_pair()
    sign_zone(
        keytrap,
        SigningPolicy(nsec3=Nsec3Params(0, b"")),
        ksk=ksk,
        zsk=zsk,
        rng=rng,
    )
    _sabotage_keytrap(keytrap, rng, fake_keys=fake_keys, garbage_sigs=garbage_sigs)
    server.add_zone(keytrap)
    attack_set.zones["keytrap"] = keytrap
    child_entries.append(("keytrap", keytrap))

    # Parent zone: delegate every child with DS, then sign (0 iterations).
    for label, zone in child_entries:
        origin = f"{label}.{PARENT_DOMAIN}"
        parent_builder.delegate(
            Name.from_text(origin),
            f"ns1.{origin}.",
            ds=[make_ds(origin, zone.keys[0].dnskey)],
        )
        parent_builder.a(f"ns1.{origin}.", v4)
        parent_builder.aaaa(f"ns1.{origin}.", v6)
    parent_zone = parent_builder.build()
    ksk, zsk = inet.key_pool.next_pair()
    sign_zone(
        parent_zone, SigningPolicy(nsec3=Nsec3Params(0, b"")), ksk=ksk, zsk=zsk, rng=rng
    )
    server.add_zone(parent_zone)
    attack_set.zones["@"] = parent_zone

    # Insert the delegation into .com and re-sign it with its existing keys.
    com = inet.tld_zones.get("com")
    if com is None:
        raise ValueError("testbed has no .com zone to delegate the attack domain from")
    com_spec = next(spec for spec in inet.tld_specs if spec.label == "com")
    from repro.dns.rdata import AAAA, NS, A

    com.add(parent, RdataType.NS, 3600, NS(f"ns1.{PARENT_DOMAIN}."))
    com.add(parent, RdataType.DS, 3600, make_ds(PARENT_DOMAIN, parent_zone.keys[0].dnskey))
    com.add(f"ns1.{PARENT_DOMAIN}", RdataType.A, 3600, A(v4))
    com.add(f"ns1.{PARENT_DOMAIN}", RdataType.AAAA, 3600, AAAA(v6))
    ksk_com, zsk_com = com.keys if com.keys else inet.key_pool.next_pair()
    com_params = (
        Nsec3Params(
            iterations=com_spec.iterations,
            salt=b"",
            opt_out=com_spec.opt_out,
        )
        if com_spec.denial == "nsec3"
        else None
    )
    sign_zone(com, SigningPolicy(nsec3=com_params), ksk=ksk_com, zsk=zsk_com, rng=rng)
    return attack_set
