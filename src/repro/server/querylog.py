"""Server-side query logging.

Paper §4.2: "We enable server-side logging to track source IP addresses
interacting with our name server. If the query destination is a forwarder,
this helps identify the forwarding target." The resolver survey uses this
log to attribute responses to the resolver that actually contacted the
authoritative infrastructure.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass


@dataclass(frozen=True)
class QueryLogEntry:
    """One query observed by the authoritative server."""

    source_ip: str
    qname: str
    qtype: int
    clock_ms: float


class QueryLog:
    """A bounded in-memory query log with per-source aggregation.

    Retention is a ring buffer: when full, the *oldest* entries are
    evicted so :meth:`sources_for` reflects recent traffic — source
    attribution in a long survey must see the forwarding targets that
    queried last, not whoever filled the log first. Evictions are
    counted in :attr:`dropped`; :attr:`by_source` keeps exact totals
    regardless of retention.
    """

    def __init__(self, max_entries=200_000):
        self.entries = deque(maxlen=max_entries)
        self.max_entries = max_entries
        self.dropped = 0
        self.by_source = Counter()

    def record(self, source_ip, qname, qtype, clock_ms=0.0):
        self.by_source[source_ip] += 1
        if len(self.entries) == self.max_entries:
            self.dropped += 1
        self.entries.append(QueryLogEntry(source_ip, qname, qtype, clock_ms))

    def sources_for(self, qname_substring):
        """Source IPs that queried names containing *qname_substring*."""
        return sorted(
            {e.source_ip for e in self.entries if qname_substring in e.qname}
        )

    def __len__(self):
        return len(self.entries)

    def clear(self):
        self.entries.clear()
        self.by_source.clear()
        self.dropped = 0
