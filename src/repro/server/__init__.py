"""Authoritative name server and its query log."""

from repro.server.authoritative import AuthoritativeServer
from repro.server.querylog import QueryLog, QueryLogEntry

__all__ = ["AuthoritativeServer", "QueryLog", "QueryLogEntry"]
