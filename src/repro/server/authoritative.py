"""The authoritative name server.

Serves one or more (possibly signed) zones over the simulated network:
positive answers, CNAME chains, wildcard synthesis, referrals with glue,
and DNSSEC-complete negative responses — the closest-encloser NSEC3 proofs
whose verification cost the paper's resolver experiments measure.
"""

from __future__ import annotations

from repro import fastpath, obs
from repro.dns.flags import Flag
from repro.dns.message import Message, make_response
from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rrset import RRset
from repro.dns.types import Opcode, RdataType
from repro.dns.wire import WireError
from repro.dnssec.costmodel import meter
from repro.dnssec.nsec3hash import nsec3_hash
from repro.net.network import Host
from repro.server.querylog import QueryLog
from repro.zone.zone import LookupStatus

#: Hard cap on CNAME chain chasing within one response.
MAX_CNAME_CHAIN = 8


#: Resolved metric children for the per-query serving hot paths.
_SERVER_CHILDREN = obs.ChildCache()


def _count_cache(outcome):
    key = ("cache", outcome)
    child = _SERVER_CHILDREN.get(obs.registry, key)
    if child is None:
        child = _SERVER_CHILDREN.put(
            key,
            obs.registry.counter(
                "repro_answer_cache_events_total",
                "Authoritative packed-answer cache events, by outcome.",
                labelnames=("outcome",),
            ).labels(outcome=outcome),
        )
    child.inc()


def _count_response(server, rcode_text):
    key = ("response", server, rcode_text)
    child = _SERVER_CHILDREN.get(obs.registry, key)
    if child is None:
        child = _SERVER_CHILDREN.put(
            key,
            obs.registry.counter(
                "repro_auth_responses_total",
                "Authoritative responses, by server and rcode.",
                labelnames=("server", "rcode"),
            ).labels(server=server, rcode=rcode_text),
        )
    child.inc()


class _CachedAnswer:
    """One packed response: encoded wire plus its recorded cost charges."""

    __slots__ = ("wire", "rcode_text", "charges")

    def __init__(self, wire, rcode_text, charges):
        self.wire = wire
        self.rcode_text = rcode_text
        self.charges = charges


class PackedAnswerCache:
    """Fully encoded responses keyed by the question shape.

    A hit splices the query id into the cached wire (the
    ``Message.encode()`` memo technique) and :meth:`CostMeter.replay`\\ s
    the charge sequence recorded when the response was first built, so
    the cost model and guard budgets behave exactly as if the server had
    recomputed the answer. Insertion-ordered with deterministic FIFO
    eviction; the hosting server clears it whenever any of its zones
    mutates (the zone-serial component of the key is realised as
    invalidate-on-mutation — serial bumps go through
    :meth:`Zone.replace_rrset`, which fires the mutation listeners).
    """

    __slots__ = ("limit", "entries", "hits", "misses", "evictions", "invalidations")

    def __init__(self, limit=8192):
        self.limit = limit
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key):
        return self.entries.get(key)

    def put(self, key, entry):
        entries = self.entries
        if key not in entries and len(entries) >= self.limit:
            entries.pop(next(iter(entries)))
            self.evictions += 1
            if obs.enabled:
                _count_cache("eviction")
            if obs.events:
                obs.emit("cache.evict", cache="packed-answer", reason="capacity", n=1)
        entries[key] = entry

    def invalidate(self):
        """Drop every entry (a hosted zone changed under the cache)."""
        if self.entries:
            self.entries.clear()
        self.invalidations += 1
        if obs.enabled:
            _count_cache("invalidation")
        if obs.events:
            obs.emit("cache.invalidate", cache="packed-answer")


class AuthoritativeServer(Host):
    """A name server authoritative for a set of zones."""

    def __init__(self, name="auth", network=None):
        self.name = name
        self.network = network
        self.zones = {}
        self.log = QueryLog()
        #: Zones (by origin Name) that may be transferred via AXFR. Real
        #: registries rarely allow transfers; the paper could AXFR only
        #: .ch/.nu/.se/.li.
        self.axfr_allowed = set()
        self.answer_cache = PackedAnswerCache()
        #: Longest-prefix index over zone origins (canonical label keys).
        self._zone_index = {}
        #: Optional hook: called with a qname that matched no hosted
        #: zone; may materialise and host one on the spot (lazy SLDs).
        self.zone_factory = None
        #: Optional clock override for query-log timestamps. The
        #: simulated campaigns leave it None (log entries carry the sim
        #: clock); the socket service points it at wall time so live
        #: logs line up with operator tooling.
        self.clock = None

    def _log_clock(self):
        if self.clock is not None:
            return self.clock()
        return self.network.clock_ms if self.network else 0.0

    def add_zone(self, zone):
        """Host *zone* (keyed by origin) on this server."""
        self.zones[zone.origin] = zone
        self._zone_index[zone.origin._key()] = zone
        zone.add_mutation_listener(self.answer_cache.invalidate)
        # A new zone can change the answer to anything previously REFUSED
        # or referred; start from a clean slate.
        self.answer_cache.invalidate()
        return self

    def host_lazily(self, zone):
        """Host *zone* without invalidating the packed-answer cache.

        Only sound when the zone is a deterministic materialisation —
        any answer the cache could already hold for its names was
        computed from an identical earlier materialisation, so nothing
        cached can be stale.
        """
        self.zones[zone.origin] = zone
        self._zone_index[zone.origin._key()] = zone
        zone.add_mutation_listener(self.answer_cache.invalidate)
        return self

    def evict_zone(self, origin):
        """Forget a lazily hosted zone (cached answers stay valid)."""
        zone = self.zones.pop(origin, None)
        if zone is not None:
            self._zone_index.pop(origin._key(), None)
        return zone

    def zone_for(self, qname):
        """The most specific zone containing *qname*, or None.

        Longest-suffix match over the origin index: walk the question's
        canonical key from most to least specific instead of scanning
        every hosted zone (registry servers host hundreds). On a miss,
        the :attr:`zone_factory` hook gets one chance to materialise the
        zone lazily.
        """
        qkey = Name.from_text(qname)._key()
        index = self._zone_index
        for depth in range(len(qkey), -1, -1):
            zone = index.get(qkey[:depth])
            if zone is not None:
                return zone
        if self.zone_factory is not None:
            return self.zone_factory(qname)
        return None

    # -- datagram entry point ------------------------------------------------

    def handle_datagram(self, wire, src_ip, via_tcp=False):
        """Parse wire bytes, dispatch AXFR or a normal query, encode the reply."""
        try:
            query = Message.from_wire(wire)
        except WireError:
            return None
        cache_key = self._cache_key(query, via_tcp)
        if cache_key is not None:
            entry = self.answer_cache.get(cache_key)
            if entry is not None:
                return self._serve_cached(query, entry, src_ip)
            self.answer_cache.misses += 1
            if obs.enabled:
                _count_cache("miss")
            recorder_charges = []
            previous_recorder = meter.recorder
            meter.recorder = recorder_charges
        try:
            if not obs.enabled:
                response = self._dispatch(query, src_ip, via_tcp)
            else:
                if obs.tracing:
                    # qname rendering is span decoration only — skip it
                    # (and the span) when no tracer is recording.
                    qname = (
                        query.question[0].name.to_text()
                        if query.question
                        else "?"
                    )
                    with obs.span(
                        "auth.query", server=self.name, qname=qname
                    ) as span:
                        response = self._dispatch(query, src_ip, via_tcp)
                        if response is not None:
                            span.set(rcode=Rcode.to_text(response.rcode))
                else:
                    response = self._dispatch(query, src_ip, via_tcp)
                if response is not None:
                    _count_response(self.name, Rcode.to_text(response.rcode))
            if response is None:
                return None
            max_size = None
            if not via_tcp:
                max_size = query.edns.payload_size if query.edns else 512
            encoded = response.to_wire(max_size=max_size)
        finally:
            if cache_key is not None:
                meter.recorder = previous_recorder
        if cache_key is not None:
            self.answer_cache.put(
                cache_key,
                _CachedAnswer(
                    encoded, Rcode.to_text(response.rcode), tuple(recorder_charges)
                ),
            )
        return encoded

    def _cache_key(self, query, via_tcp):
        """The packed-answer cache key for *query*, or None if uncacheable.

        Only plain single-question QUERY opcodes are cached. The key
        captures everything the response bytes (id aside) depend on: the
        question exactly as asked (raw labels — responses echo the
        question's case), RD (mirrored into the response flags), the
        EDNS shape, and the transport/payload size that drives UDP
        truncation.
        """
        if not fastpath.enabled("answer_cache"):
            return None
        if query.is_response or query.opcode != Opcode.QUERY:
            return None
        if len(query.question) != 1:
            return None
        question = query.question[0]
        rrtype = int(question.rrtype)
        if rrtype == int(RdataType.AXFR):
            return None
        return (
            question.name.labels,
            rrtype,
            int(question.rdclass),
            query.has_flag(Flag.RD),
            query.edns is not None,
            query.dnssec_ok,
            query.edns.payload_size if query.edns else None,
            via_tcp,
        )

    def _serve_cached(self, query, entry, src_ip):
        """Log, re-charge the cost model, and splice the query id in."""
        question = query.question[0]
        clock = self._log_clock()
        self.log.record(src_ip, question.name.to_text(), question.rrtype, clock)
        self.answer_cache.hits += 1
        if not obs.enabled:
            meter.replay(entry.charges)
        else:
            _count_cache("hit")
            if obs.tracing:
                with obs.span(
                    "auth.query", server=self.name, qname=question.name.to_text()
                ) as span:
                    span.set(rcode=entry.rcode_text, cached=True)
                    meter.replay(entry.charges)
            else:
                meter.replay(entry.charges)
            _count_response(self.name, entry.rcode_text)
        return query.id.to_bytes(2, "big") + entry.wire[2:]

    def _dispatch(self, query, src_ip, via_tcp):
        if (
            query.question
            and int(query.question[0].rrtype) == int(RdataType.AXFR)
        ):
            return self.handle_axfr(query, src_ip, via_tcp)
        return self.handle_query(query, src_ip)

    def handle_axfr(self, query, src_ip, via_tcp):
        """Zone transfer (RFC 5936, single-message form).

        AXFR is TCP-only; over UDP the truncation bit sends the client to
        the TCP retry path. Zones not in :attr:`axfr_allowed` are REFUSED,
        as almost every registry does in practice.
        """
        question = query.question[0]
        clock = self._log_clock()
        self.log.record(src_ip, question.name.to_text(), question.rrtype, clock)
        response = make_response(query)
        zone = self.zones.get(question.name)
        if zone is None:
            response.rcode = Rcode.NOTAUTH
            return response
        if zone.origin not in self.axfr_allowed:
            response.rcode = Rcode.REFUSED
            return response
        if not via_tcp:
            response.set_flag(Flag.TC)
            return response
        response.set_flag(Flag.AA)
        soa = zone.soa
        response.answer.append(soa)
        for rrset in zone.all_rrsets():
            if int(rrset.rrtype) == int(RdataType.SOA):
                continue
            response.answer.append(rrset)
            sigs = zone.get_rrsigs(rrset.name, rrset.rrtype)
            if sigs is not None:
                response.answer.append(sigs)
        response.answer.append(soa)  # AXFR ends with the SOA again
        return response

    # -- query processing -------------------------------------------------------

    def handle_query(self, query, src_ip="?"):
        """Answer one parsed query message authoritatively."""
        if query.is_response or query.opcode != Opcode.QUERY or not query.question:
            response = make_response(query)
            response.rcode = Rcode.FORMERR
            return response
        question = query.question[0]
        clock = self._log_clock()
        self.log.record(src_ip, question.name.to_text(), question.rrtype, clock)

        response = make_response(query)
        zone = self.zone_for(question.name)
        if (
            zone is not None
            and int(question.rrtype) == int(RdataType.DS)
            and zone.origin == question.name
            and not question.name.is_root()
        ):
            # DS lives in the parent: when this server hosts both sides of
            # the cut, answer from the delegating zone (as BIND does).
            parent_zone = self.zone_for(question.name.parent())
            if parent_zone is not None:
                zone = parent_zone
        if zone is None:
            response.rcode = Rcode.REFUSED
            return response
        response.set_flag(Flag.AA)
        dnssec = query.dnssec_ok
        self._answer_from_zone(response, zone, question.name, question.rrtype, dnssec)
        return response

    def _answer_from_zone(self, response, zone, qname, qtype, dnssec, depth=0):
        result = zone.lookup(qname, qtype)

        if result.status is LookupStatus.ANSWER:
            self._add_with_sigs(response, response.answer, zone, result.rrset)
            if int(qtype) == int(RdataType.NS) and qname == zone.origin:
                self._add_glue(response, zone, result.rrset)
        elif result.status is LookupStatus.CNAME:
            self._add_with_sigs(response, response.answer, zone, result.cname)
            if depth < MAX_CNAME_CHAIN:
                target = result.cname[0].target
                target_zone = self.zone_for(target)
                if target_zone is not None:
                    self._answer_from_zone(
                        response, target_zone, target, qtype, dnssec, depth + 1
                    )
        elif result.status is LookupStatus.WILDCARD:
            rrset = result.rrset or result.cname
            wildcard_sigs = zone.get_rrsigs(result.wildcard_owner, rrset.rrtype)
            response.answer.append(rrset)
            if dnssec and wildcard_sigs is not None:
                retargeted = RRset(
                    qname, RdataType.RRSIG, wildcard_sigs.ttl, list(wildcard_sigs.rdatas)
                )
                response.answer.append(retargeted)
            if dnssec:
                self._add_wildcard_proof(response, zone, qname)
        elif result.status is LookupStatus.DELEGATION:
            self._add_referral(response, zone, result.delegation, dnssec)
        elif result.status is LookupStatus.NODATA:
            response.rcode = Rcode.NOERROR
            self._add_negative(response, zone, qname, dnssec, nxdomain=False)
        elif result.status is LookupStatus.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
            self._add_negative(response, zone, qname, dnssec, nxdomain=True)
        else:  # NOT_IN_ZONE — zone selection bug or stale config
            response.rcode = Rcode.SERVFAIL

    # -- response assembly helpers ---------------------------------------------

    def _add_with_sigs(self, response, section, zone, rrset):
        section.append(rrset)
        sigs = zone.get_rrsigs(rrset.name, rrset.rrtype)
        if response.dnssec_ok and sigs is not None:
            section.append(sigs)

    def _add_glue(self, response, zone, ns_rrset):
        for ns in ns_rrset:
            for glue_type in (RdataType.A, RdataType.AAAA):
                glue = zone.get_rrset(ns.target, glue_type) if ns.target.is_subdomain_of(zone.origin) else None
                if glue is not None:
                    response.add_rrset(response.additional, glue)

    def _add_referral(self, response, zone, ns_rrset, dnssec):
        response.set_flag(Flag.AA, False)
        response.authority.append(ns_rrset)
        cut = ns_rrset.name
        if dnssec and zone.signed:
            ds = zone.get_rrset(cut, RdataType.DS)
            if ds is not None:
                self._add_with_sigs(response, response.authority, zone, ds)
            elif zone.nsec3_chain is not None:
                # Prove the absence of DS: matching NSEC3 (or opt-out cover).
                self._add_nsec3_for(response, zone, cut, prove_no_ds=True)
            elif zone.nsec_chain is not None:
                self._add_nsec_for(response, zone, cut)
        self._add_glue(response, zone, ns_rrset)

    def _add_soa(self, response, zone):
        soa = zone.soa
        if soa is not None:
            self._add_with_sigs(response, response.authority, zone, soa)

    def _add_negative(self, response, zone, qname, dnssec, nxdomain):
        self._add_soa(response, zone)
        if not (dnssec and zone.signed):
            return
        if zone.nsec3_chain is not None:
            if nxdomain:
                self._add_nsec3_closest_encloser_proof(response, zone, qname)
            else:
                self._add_nsec3_for(response, zone, qname)
        elif zone.nsec_chain is not None:
            if nxdomain:
                self._add_nsec_proof(response, zone, qname)
            else:
                self._add_nsec_for(response, zone, qname)

    # -- NSEC3 proofs -----------------------------------------------------------

    def _chain_hash(self, zone, name):
        params = zone.nsec3_chain.params
        return nsec3_hash(
            Name.from_text(name).canonical_wire(),
            params.salt,
            params.iterations,
            params.hash_algorithm,
        )

    def _append_chain_entry(self, response, zone, entry):
        if entry is None:
            return
        rrset = RRset(entry.owner_name, RdataType.NSEC3, 3600, [entry.rdata])
        existing = response.find_rrset(response.authority, entry.owner_name, RdataType.NSEC3)
        if existing is not None:
            return
        response.authority.append(rrset)
        sigs = zone.get_rrsigs(entry.owner_name, RdataType.NSEC3)
        if sigs is not None:
            response.authority.append(sigs)

    def _add_nsec3_for(self, response, zone, qname, prove_no_ds=False):
        """Matching NSEC3 for an existing name (NODATA / no-DS proofs)."""
        chain = zone.nsec3_chain
        digest = self._chain_hash(zone, qname)
        entry = chain.find_matching(digest)
        if entry is not None:
            self._append_chain_entry(response, zone, entry)
        else:
            # Opt-out zones carry no record for insecure delegations: send
            # the closest-provable-encloser proof (RFC 5155 §7.2.4).
            self._add_nsec3_closest_encloser_proof(response, zone, qname)

    def _add_nsec3_closest_encloser_proof(self, response, zone, qname):
        """RFC 5155 §7.2.1: CE match + next-closer cover + wildcard cover."""
        chain = zone.nsec3_chain
        qname = Name.from_text(qname)
        closest = None
        next_closer = qname
        candidate = qname
        while candidate.label_count > zone.origin.label_count:
            parent = candidate.parent()
            if zone._name_exists(parent) or parent == zone.origin:
                closest = parent
                next_closer = candidate
                break
            candidate = parent
        if closest is None:
            closest = zone.origin
        self._append_chain_entry(
            response, zone, chain.find_matching(self._chain_hash(zone, closest))
        )
        self._append_chain_entry(
            response, zone, chain.find_covering(self._chain_hash(zone, next_closer))
        )
        wildcard = closest.prepend(b"*")
        self._append_chain_entry(
            response, zone, chain.find_covering(self._chain_hash(zone, wildcard))
        )

    def _add_wildcard_proof(self, response, zone, qname):
        """For wildcard expansions: prove the query name does not exist."""
        if zone.nsec3_chain is not None:
            self._append_chain_entry(
                response,
                zone,
                zone.nsec3_chain.find_covering(self._chain_hash(zone, qname)),
            )
        elif zone.nsec_chain is not None:
            entry = zone.nsec_chain.find_covering(Name.from_text(qname))
            self._append_nsec_entry(response, zone, entry)

    # -- NSEC proofs ----------------------------------------------------------

    def _append_nsec_entry(self, response, zone, entry):
        if entry is None:
            return
        if response.find_rrset(response.authority, entry.owner_name, RdataType.NSEC):
            return
        response.authority.append(
            RRset(entry.owner_name, RdataType.NSEC, 3600, [entry.rdata])
        )
        sigs = zone.get_rrsigs(entry.owner_name, RdataType.NSEC)
        if sigs is not None:
            response.authority.append(sigs)

    def _add_nsec_for(self, response, zone, qname):
        entry = zone.nsec_chain.find_matching(Name.from_text(qname))
        if entry is None:
            entry = zone.nsec_chain.find_covering(Name.from_text(qname))
        self._append_nsec_entry(response, zone, entry)

    def _add_nsec_proof(self, response, zone, qname):
        qname = Name.from_text(qname)
        self._append_nsec_entry(response, zone, zone.nsec_chain.find_covering(qname))
        # Deny the wildcard at the closest encloser.
        candidate = qname
        closest = zone.origin
        while candidate.label_count > zone.origin.label_count:
            parent = candidate.parent()
            if zone._name_exists(parent):
                closest = parent
                break
            candidate = parent
        wildcard = closest.prepend(b"*")
        self._append_nsec_entry(response, zone, zone.nsec_chain.find_covering(wildcard))
