"""Microbenchmarks for the protocol substrate.

Not paper artifacts — these size the building blocks every experiment
stands on (codec, hashing, signing, verification), so regressions in the
substrate show up before they distort experiment wall-times.
"""

import random

import pytest

from repro.crypto.keys import (
    ALG_ECDSAP256SHA256,
    ALG_RSASHA256,
    generate_keypair,
    verify_signature,
)
from repro.crypto.keys import _verify_signature_uncached
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.rrset import RRset
from repro.dns.types import RdataType


@pytest.fixture(scope="module")
def sample_response():
    msg = make_query("www.example.com", RdataType.A, want_dnssec=True)
    for index in range(4):
        msg.add_rrset(
            msg.answer,
            RRset("www.example.com", RdataType.A, 300, [A(f"192.0.2.{index + 1}")]),
        )
    return msg


def test_message_encode(benchmark, sample_response):
    benchmark(sample_response.to_wire)


def test_message_encode_memoized(benchmark, sample_response):
    """The campaign hot path: encode() splices the id into cached bytes."""
    sample_response.encode()  # warm
    benchmark(sample_response.encode)


def test_message_decode(benchmark, sample_response):
    wire = sample_response.to_wire()
    benchmark(Message.from_wire, wire)


def test_name_parse(benchmark):
    benchmark(Name.from_text, "deeply.nested.sub.domain.example.com")


def test_name_canonical_order(benchmark):
    names = [Name.from_text(f"host-{i}.example.com") for i in range(64)]
    benchmark(sorted, names)


@pytest.fixture(scope="module")
def rsa_pair():
    return generate_keypair(ALG_RSASHA256, rsa_bits=512, rng=random.Random(1))


@pytest.fixture(scope="module")
def ecdsa_pair():
    return generate_keypair(ALG_ECDSAP256SHA256, rng=random.Random(2))


def test_rsa512_sign(benchmark, rsa_pair):
    """CRT path: freshly generated keys carry (p, q, dp, dq, qinv)."""
    benchmark(rsa_pair.sign, b"benchmark message")


def test_rsa512_sign_plain_d(benchmark, rsa_pair):
    """The fallback plain-d exponentiation the CRT path replaces."""
    from repro import fastpath

    with fastpath.disabled("rsa_crt"):
        benchmark(rsa_pair.sign, b"benchmark message")


def test_rsa512_verify_uncached(benchmark, rsa_pair):
    signature = rsa_pair.sign(b"benchmark message")
    benchmark(_verify_signature_uncached, rsa_pair.dnskey, b"benchmark message", signature)


def test_ecdsa_sign(benchmark, ecdsa_pair):
    benchmark(ecdsa_pair.sign, b"benchmark message")


def test_ecdsa_verify_uncached(benchmark, ecdsa_pair):
    signature = ecdsa_pair.sign(b"benchmark message")
    benchmark(
        _verify_signature_uncached, ecdsa_pair.dnskey, b"benchmark message", signature
    )


def test_verify_memoized(benchmark, ecdsa_pair):
    """The validator-level RRSIG memo: a warm hit skips the curve math."""
    from repro.dns.rrset import RRset as _RRset
    from repro.dnssec.signer import make_rrsig_rrset, sign_rrset
    from repro.dnssec.validator import validate_rrset, verification_memo

    rrset = _RRset("www.example.com", RdataType.A, 300, [A("192.0.2.1")])
    rrsig = sign_rrset(rrset, ecdsa_pair, "example.com")
    rrsigs = make_rrsig_rrset(rrset, [rrsig])
    dnskeys = _RRset("example.com", RdataType.DNSKEY, 3600, [ecdsa_pair.dnskey])
    verification_memo.clear()
    assert validate_rrset(rrset, rrsigs, dnskeys).secure  # warm
    benchmark(validate_rrset, rrset, rrsigs, dnskeys)


_NSEC3_OWNER = Name.from_text("bench.example.com").canonical_wire()
_NSEC3_SALT = bytes.fromhex("aabbccdd")


def test_nsec3_hash_uncached(benchmark):
    """150 iterations (the paper's limit tipping point), no memo."""
    from repro.dnssec.nsec3hash import _compute_iterated_digest

    benchmark(_compute_iterated_digest, _NSEC3_OWNER, _NSEC3_SALT, 150)


def test_nsec3_hash_memoized(benchmark):
    """Same hash through the hot-path memo keyed per (salt, iterations)."""
    from repro.dnssec.nsec3hash import nsec3_hash

    nsec3_hash(_NSEC3_OWNER, _NSEC3_SALT, 150)  # warm
    benchmark(nsec3_hash, _NSEC3_OWNER, _NSEC3_SALT, 150)


def test_event_emit_sampled(benchmark):
    """One journal emission on the hottest kind (sampled 1-in-8, no sink):
    the marginal cost every query pays when --events-out is active."""
    from repro.obs.events import EventJournal

    journal = EventJournal(seed=7)
    benchmark(journal.emit, "query.issued", 125.0, qname="a.example.", qtype=48)


def test_event_emit_disabled(benchmark):
    """The guard every hot path pays when no journal is attached."""
    from repro import obs

    obs.attach_journal(None)
    benchmark(obs.emit, "query.issued", 125.0, qname="a.example.", qtype=48)


def test_timeseries_scrape_tick(benchmark):
    """One scrape of the default selector set over a populated registry."""
    from repro.net.sim import SimKernel
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TimeSeriesScraper

    registry = MetricsRegistry()
    registry.counter("repro_scan_queries_total", "q").inc(1000)
    registry.counter(
        "repro_cache_lookups_total", "c", labelnames=("result",)
    ).labels(result="hit").inc(400)
    registry.gauge("repro_inflight_sessions", "g").set(32)
    scraper = TimeSeriesScraper(SimKernel(), registry, interval_ms=500.0)
    benchmark(scraper.scrape, 500.0)
