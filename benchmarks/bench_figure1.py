"""Figure 1: CDFs of additional iterations and salt length.

Paper: 12.2 % of NSEC3-enabled domains at 0 iterations; ≤25 iterations for
99.9 %; ≤10-byte salt for 97.2 % of salted domains; tails reaching 500
iterations and 160-byte salts.
"""

from repro.analysis.figures import figure1_series

GRID = (0, 1, 2, 5, 8, 10, 16, 25, 40, 50, 100, 150, 200, 500)


def test_figure1(benchmark, domain_scan):
    results = domain_scan["results"]
    fig = benchmark(figure1_series, results)

    print("\n=== Figure 1: CDFs over NSEC3-enabled domains (measured) ===")
    print(f"{'x':>5s} {'iterations ≤ x (%)':>20s} {'salt length ≤ x B (%)':>22s}")
    for x, it_pct, salt_pct in fig.rows(GRID):
        print(f"{x:5d} {it_pct:20.1f} {salt_pct:22.1f}")

    zero_pct = 100.0 * fig.iterations_cdf.fraction_at_or_below(0)
    p999 = fig.iterations_cdf.percentile(0.999)
    print(f"\nzero iterations: paper=12.2 %  measured={zero_pct:.1f} %")
    print(f"P99.9 iterations: paper≤25     measured={p999}")
    print(f"max iterations:  paper=500     measured={fig.iterations_cdf.samples[-1]}")

    # Shape: minority at zero, vast majority at ≤25, long tail present.
    assert zero_pct < 30.0
    assert fig.iterations_cdf.fraction_at_or_below(25) > 0.95
    assert fig.iterations_cdf.samples[-1] >= 200
    assert fig.salt_length_cdf.fraction_at_or_below(10) > 0.9
