"""§5.2 headline numbers: the resolver-side findings.

Paper (of 114 K validators): 78.3 % limit iterations; 59.9 % implement
Item 6 (insecure above a limit); 18.4 % implement Item 8 (SERVFAIL);
418 resolvers SERVFAIL from it-1; <18 % of limiters attach EDE 27;
0.2 % violate Item 7; 4.3 % show an Item 12 gap; common Item 6 thresholds
150 ≫ 100 > 50 with 12.5× fewer at 50 than at 150.
"""

from collections import Counter

from repro.analysis.stats import resolver_headline_stats


def test_headline_resolvers(benchmark, resolver_survey):
    classifications = [entry.classification for entry in resolver_survey["all"]]
    headline = benchmark(resolver_headline_stats, classifications)

    print("\n=== §5.2 headline: validating resolvers (paper vs measured) ===")
    for label, paper, measured in headline.rows():
        print(f"  {label:40s} paper={paper:>6}  measured={measured}")

    thresholds = Counter(
        cls.insecure_threshold
        for cls in classifications
        if cls.implements_item6 and cls.insecure_threshold is not None
    )
    print("\nItem 6 thresholds (measured):", dict(sorted(thresholds.items())))

    assert headline.validators >= 50
    # Shapes: most validators limit; Item 6 dominates Item 8.
    assert headline.limit_pct > 55.0
    assert headline.item6 > headline.item8
    # 150 is the most common Item 6 threshold after 100 (Google's).
    assert thresholds.get(150, 0) > thresholds.get(50, 0)


def test_threshold_ratio_150_vs_50(benchmark, resolver_survey):
    classifications = [entry.classification for entry in resolver_survey["all"]]

    def tally():
        # Pure Item 6 thresholds: resolvers with an additional SERVFAIL
        # band (Item 12 gaps) sit at 50 for a different reason than the
        # CVE patches and would skew the vendor-threshold histogram.
        return Counter(
            cls.insecure_threshold
            for cls in classifications
            if cls.implements_item6
            and not cls.implements_item8
            and cls.insecure_threshold is not None
        )

    thresholds = benchmark(tally)
    at150 = thresholds.get(150, 0)
    at50 = thresholds.get(50, 0)
    print(f"\nthreshold 150: {at150}, threshold 50: {at50} "
          f"(paper ratio ≈ 12.5×)")
    if at50:
        assert at150 / at50 > 3.0
    else:
        assert at150 > 0
