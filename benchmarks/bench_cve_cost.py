"""CVE-2023-50868: resolver CPU amplification from NSEC3 iterations.

Gruza et al. (cited as the paper's motivation) measured up to a 72×
increase in resolver CPU instructions. Here the cost meter counts real
SHA-1 compression invocations during validation of closest-encloser
proofs, so the amplification curve is measured, not modelled.
"""

import pytest

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.dnssec.nsec3hash import nsec3_hash_name
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient

SWEEP = (1, 25, 50, 100, 150, 300, 500)


@pytest.fixture(scope="module")
def victim(bench_internet):
    inet = bench_internet["inet"]
    resolver = inet.make_resolver(VENDOR_POLICIES["legacy"], name="cve-victim")
    stub = StubClient(inet.network, inet.allocator.next_v4())
    return resolver, stub


def _denial_cost(stub, resolver, probes, key, unique):
    before = meter.snapshot()
    answer = stub.ask(resolver.ip, probes.probe_name(key, unique), RdataType.A)
    assert answer.rcode == Rcode.NXDOMAIN
    return (meter.snapshot() - before).sha1_compressions


def test_cve_amplification_curve(benchmark, bench_internet, victim):
    resolver, stub = victim
    probes = bench_internet["probes"]
    baseline = benchmark.pedantic(
        _denial_cost, args=(stub, resolver, probes, 1, "amp-base"),
        rounds=1, iterations=1,
    )
    print("\n=== CVE-2023-50868 amplification (SHA-1 compressions per NXDOMAIN) ===")
    print(f"{'it-N':>6s} {'compressions':>14s} {'vs it-1':>9s}")
    print(f"{1:6d} {baseline:14d} {'1.0x':>9s}")
    amplification = {}
    for count in SWEEP[1:]:
        cost = _denial_cost(stub, resolver, probes, count, f"amp-{count}")
        amplification[count] = cost / baseline
        print(f"{count:6d} {cost:14d} {amplification[count]:8.1f}x")

    # The paper's motivation: high iteration counts amplify CPU massively.
    assert amplification[500] > 30.0
    assert amplification[500] > amplification[150] > amplification[50]


def test_guarded_resolver_cost_is_bounded(benchmark, bench_internet):
    """A work budget caps per-query cost on the worst probe zone.

    The "strict" profile (2,000 SHA-1 compressions) is far below what an
    it-500 denial costs an unguarded resolver; the guarded resolver must
    abort with SERVFAIL + EDE while staying within the budget plus at
    most one NSEC3 hash of overshoot.
    """
    from repro.resolver.guard import GUARD_PROFILES

    inet = bench_internet["inet"]
    probes = bench_internet["probes"]
    profile = GUARD_PROFILES["strict"]
    guarded = inet.make_resolver(
        VENDOR_POLICIES["legacy"], name="cve-guarded", guard=profile
    )
    stub = StubClient(inet.network, inet.allocator.next_v4())

    def guarded_denial_cost():
        before = meter.snapshot()
        answer = stub.ask(
            guarded.ip, probes.probe_name(500, "strict-bench"), RdataType.A
        )
        assert answer.rcode == Rcode.SERVFAIL
        assert answer.ede_codes
        return (meter.snapshot() - before).sha1_compressions

    cost = benchmark.pedantic(guarded_denial_cost, rounds=1, iterations=1)
    assert cost <= profile.max_hash_cost + 1_000
    assert guarded.guard_events.get("hash_cost", 0) >= 1

    # The same probe against an unguarded resolver burns multiples of the
    # budget — the bound above is doing real work.
    unguarded = inet.make_resolver(VENDOR_POLICIES["legacy"], name="cve-unbounded")
    before = meter.snapshot()
    answer = stub.ask(unguarded.ip, probes.probe_name(500, "strict-free"), RdataType.A)
    assert answer.rcode == Rcode.NXDOMAIN
    assert (meter.snapshot() - before).sha1_compressions > profile.max_hash_cost


def test_nsec3_hash_throughput(benchmark):
    """Microbenchmark: one NSEC3 hash at the RFC 5155 ceiling (2,500 it)."""
    benchmark(nsec3_hash_name, "some-name.example.com", b"\xab\xcd" * 4, 2500)


def test_resolver_validation_cost_per_query(benchmark, bench_internet, victim):
    """Macrobenchmark: full resolve+validate of an it-150 denial."""
    resolver, stub = victim
    probes = bench_internet["probes"]
    counter = {"n": 0}

    def resolve_once():
        counter["n"] += 1
        return stub.ask(
            resolver.ip, probes.probe_name(150, f"macro-{counter['n']}"), RdataType.A
        )

    result = benchmark(resolve_once)
    assert result.rcode == Rcode.NXDOMAIN
