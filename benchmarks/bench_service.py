"""Benchmarks for the real-socket service mode's overload machinery.

Not paper artifacts — these size the per-datagram costs that decide how
the live frontends behave under flood: the header-only shed reply (paid
per packet when the admission gate is closed), the serve-stale shed
parse, the admission gate itself, and one full UDP round-trip through a
bound socket, engine worker, and backend resolver.
"""

import asyncio
import random

import pytest

from repro.dns.message import make_query
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.resolver.guard import ConcurrencyGate
from repro.service.engine import ServiceEngine, wire_rcode_reply
from repro.service.frontend import Binding, DnsService
from repro.service.world import build_service_world

PROBE_VALID = "www.valid.rfc9276-in-the-wild.com"


@pytest.fixture(scope="module")
def world():
    return build_service_world(domains=6, tlds=4, seed=3)


@pytest.fixture(scope="module")
def query_wire():
    return make_query(PROBE_VALID, RdataType.A, want_dnssec=True).to_wire()


def test_wire_rcode_reply(benchmark, query_wire):
    """The flood-path floor: one header-only REFUSED per shed packet."""
    benchmark(wire_rcode_reply, query_wire, Rcode.REFUSED)


def test_shed_datagram_stale(benchmark, world, query_wire):
    """The serve-stale shed: full parse plus a read-only cache peek."""
    # Warm the cache so the shed path takes the stale branch.
    world.resolver.handle_datagram(query_wire, "10.0.0.9")
    assert world.resolver.shed_datagram(query_wire) is not None
    benchmark(world.resolver.shed_datagram, query_wire)


def test_concurrency_gate_admit_release(benchmark):
    gate = ConcurrencyGate(64)

    def cycle():
        gate.admit()
        gate.release()

    benchmark(cycle)


def test_engine_serve_cached(benchmark, world, query_wire):
    """One queued query through the worker against a warm cache."""
    engine = ServiceEngine()
    job_reply = []
    world.resolver.handle_datagram(query_wire, "10.0.0.9")  # warm

    def one():
        job_reply.clear()
        engine.gate.admit()
        # Serve inline on this thread: same code path the worker runs.
        engine._serve(
            type(
                "Job",
                (),
                {
                    "backend_name": "resolver",
                    "backend": world.resolver,
                    "wire": query_wire,
                    "src_ip": "10.0.0.9",
                    "via_tcp": False,
                    "reply": job_reply.append,
                    "deadline": float("inf"),
                    "t_in": 0.0,
                },
            )()
        )
        engine.gate.release()

    benchmark(one)


def test_udp_roundtrip_live_socket(benchmark, world):
    """Full stack: loopback UDP in, engine queue, resolver, UDP out."""

    async def scenario(count):
        service = DnsService(
            [Binding("resolver", world.resolver, port=0)], engine=ServiceEngine()
        )
        await service.start()
        port = service.bindings[0].bound_port
        loop = asyncio.get_running_loop()
        pending = {}

        class _Client(asyncio.DatagramProtocol):
            def connection_made(self, transport):
                self.transport = transport

            def datagram_received(self, data, addr):
                future = pending.pop(int.from_bytes(data[:2], "big"), None)
                if future is not None and not future.done():
                    future.set_result(data)

        transport, protocol = await loop.create_datagram_endpoint(
            _Client, remote_addr=("127.0.0.1", port)
        )
        rng = random.Random(4)
        try:
            for __ in range(count):
                msg_id = rng.randrange(65536)
                while msg_id in pending:
                    msg_id = rng.randrange(65536)
                wire = make_query(
                    PROBE_VALID, RdataType.A, msg_id=msg_id
                ).to_wire()
                future = loop.create_future()
                pending[msg_id] = future
                protocol.transport.sendto(wire)
                await asyncio.wait_for(future, timeout=5.0)
        finally:
            transport.close()
            await service.drain_and_stop()

    benchmark(lambda: asyncio.run(scenario(20)))
