"""§5.1 headline numbers: the domain-side findings.

Paper: 302 M domains → 26.6 M DNSSEC-enabled (8.8 %) → 15.5 M NSEC3-enabled
(58.9 % of DNSSEC); 12.2 % zero iterations (87.8 % non-compliant); 8.6 %
saltless; 6.4 % opt-out; iteration maximum 500. TLDs: 1,354/1,449 DNSSEC,
1,302 NSEC3, 688 zero-iteration, 447 at 100 (Identity Digital), 672
saltless, 85.4 % opt-out.
"""

from collections import Counter

from repro.analysis.stats import domain_headline_stats


def test_headline_domains(benchmark, bench_internet, domain_scan):
    results = domain_scan["results"]
    total = len(bench_internet["domains"])
    headline = benchmark(domain_headline_stats, results, total)

    print("\n=== §5.1 headline: registered domains (paper vs measured) ===")
    for label, paper, measured in headline.rows():
        print(f"  {label:42s} paper={paper:>6}  measured={measured}")

    assert headline.nsec3_enabled > 0
    # The paper's central claim: most NSEC3-enabled domains break Item 2.
    assert headline.non_compliant_pct > 70.0
    # The tail exists and the max matches the paper's observed 500.
    assert headline.max_iterations == 500


def test_headline_tlds(benchmark, bench_internet, tld_scan):
    def analyse():
        nsec3 = [r for r in tld_scan if r.nsec3_enabled]
        return {
            "nsec3": len(nsec3),
            "zero": sum(1 for r in nsec3 if r.report.item2_zero_iterations),
            "at100": sum(1 for r in nsec3 if r.report.iterations == 100),
            "saltless": sum(1 for r in nsec3 if r.report.item3_no_salt),
            "optout": sum(1 for r in nsec3 if r.report.opt_out),
            "iteration_counts": Counter(r.report.iterations for r in nsec3),
        }

    stats = benchmark(analyse)
    scale = len(bench_internet["tlds"]) / 1449.0

    print("\n=== §5.1 headline: TLDs (paper vs measured, scaled) ===")
    rows = [
        ("NSEC3-enabled TLDs", 1302, stats["nsec3"]),
        ("zero additional iterations", 688, stats["zero"]),
        ("at exactly 100 iterations (Identity Digital)", 447, stats["at100"]),
        ("no salt", 672, stats["saltless"]),
    ]
    for label, paper, measured in rows:
        print(f"  {label:46s} paper={paper:5d} (scaled≈{paper * scale:6.0f})  measured={measured}")
    optout_pct = 100.0 * stats["optout"] / stats["nsec3"] if stats["nsec3"] else 0.0
    print(f"  {'opt-out flag set (%)':46s} paper= 85.4  measured={optout_pct:.1f}")

    assert abs(stats["at100"] - 447 * scale) <= 3
    assert stats["zero"] > stats["nsec3"] * 0.4
    assert optout_pct > 60.0
