"""Table 2: the ten operators exclusively serving the most NSEC3 domains.

Paper values (of 15.5 M NSEC3-enabled domains):

    Squarespace 39.4 % @ 1/8; one.com 9.5 % @ 5/5,5/4,1/2,1/4;
    OVHcloud 8.4 % @ 8/8; Wix 5.0 % @ 1/8; TransIP 4.2 % @ 0/8,100/8;
    Loopia 3.6 % @ 1/1; domainname.shop 2.7 % @ 0/0; TimeWeb 2.1 % @ 3/0;
    Hostnet 1.5 % @ 1/4,0/0; Hostpoint 1.3 % @ 1/40.
"""

from repro.analysis.tables import format_operator_table, operator_table

PAPER_SHARES = {
    "squarespacedns.com": 39.4,
    "onecomdns.net": 9.5,
    "ovhclouddns.net": 8.4,
    "wixdns.net": 5.0,
    "transipdns.net": 4.2,
    "loopiadns.se": 3.6,
    "domainnameshopdns.no": 2.7,
    "timewebdns.ru": 2.1,
    "hostnetdns.nl": 1.5,
    "hostpointdns.ch": 1.3,
}


def test_table2(benchmark, domain_scan):
    results = domain_scan["results"]
    rows = benchmark(operator_table, results)

    print("\n=== Table 2: top authoritative operators (measured) ===")
    print(format_operator_table(rows))
    print("\npaper-vs-measured share (%):")
    measured = {row.operator: row.share_pct for row in rows}
    for operator, paper_pct in PAPER_SHARES.items():
        print(f"  {operator:24s} paper={paper_pct:5.1f}  measured={measured.get(operator, 0.0):5.1f}")

    # Shape assertions: the same leader, top-heavy distribution.
    assert rows[0].operator == "squarespacedns.com"
    assert rows[0].share_pct > 25.0
    top10 = {row.operator for row in rows}
    assert len(top10 & set(PAPER_SHARES)) >= 8
