"""Shared benchmark fixtures: one medium-scale testbed per session.

Scale rationale (see DESIGN.md §6): the paper's populations are millions
strong; the bench testbed keeps every *ratio* (operator shares, parameter
mixtures, vendor-policy weights) while scaling counts to what a laptop
signs in seconds. Exact percentages therefore converge to the paper's as
the scale grows; the tables printed by each bench include both.
"""

import json
import os

import pytest

from repro import obs
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.dnskey_scan import dnskey_scan
from repro.scanner.engine import ScanEngine
from repro.scanner.nsec3_scan import nsec3_scan, scan_tlds
from repro.scanner.resolver_scan import ResolverSurvey
from repro.testbed.internet import build_internet
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
    inject_tail_domains,
)
from repro.testbed.resolvers import deploy_resolvers
from repro.testbed.rfc9276_wild import build_probe_zones
from repro.testbed.tranco import assign_tranco_ranks

#: Benchmark-scale configuration (ratios preserved from the paper).
BENCH_CONFIG = PopulationConfig(
    n_domains=1500,
    n_tlds=400,
    tld_dnssec=374,
    tld_nsec3=359,
    tld_zero_iterations=190,
    tld_identity_digital=123,
    tld_saltless=186,
    tld_salt8=154,
    tld_salt10=2,
)

TRANCO_SIZE = 500

RESOLVER_COUNTS = dict(open_v4=110, open_v6=25, closed_v4=25, closed_v6=15)


#: Set REPRO_BENCH_METRICS=path to collect telemetry during a bench run
#: and dump a JSON snapshot of the registry when the session ends.
#: Default: off, so benchmark numbers measure the uninstrumented fast path.
_METRICS_SNAPSHOT = os.environ.get("REPRO_BENCH_METRICS", "")


@pytest.fixture(scope="session", autouse=True)
def bench_metrics_snapshot():
    if not _METRICS_SNAPSHOT:
        yield
        return
    obs.enable()
    yield
    with open(_METRICS_SNAPSHOT, "w", encoding="utf-8") as handle:
        json.dump(obs.registry.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    obs.disable()


@pytest.fixture(scope="session")
def bench_internet():
    tlds = generate_tlds(BENCH_CONFIG)
    domains = inject_tail_domains(generate_population(BENCH_CONFIG, tlds=tlds))
    domains = assign_tranco_ranks(domains, list_size=TRANCO_SIZE)
    inet = build_internet(domains, tlds, seed=42)
    probes = build_probe_zones(inet)
    return {"inet": inet, "probes": probes, "domains": domains, "tlds": tlds}


@pytest.fixture(scope="session")
def domain_scan(bench_internet):
    """The full §4.1 pipeline: DNSKEY scan then NSEC3 scan, via one resolver."""
    inet = bench_internet["inet"]
    upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="bench-upstream")
    engine = ScanEngine(
        inet.network, inet.allocator.next_v4(), upstream.ip, max_qps=14700
    )
    names = [d.name for d in bench_internet["domains"]]
    enabled = dnskey_scan(engine, names)
    results = nsec3_scan(engine, enabled)
    return {"engine": engine, "enabled": enabled, "results": results,
            "upstream": upstream}


@pytest.fixture(scope="session")
def tld_scan(bench_internet, domain_scan):
    return scan_tlds(domain_scan["engine"], bench_internet["tlds"])


@pytest.fixture(scope="session")
def resolver_survey(bench_internet):
    """The full §4.2 pipeline: deploy, probe open + closed resolvers."""
    inet = bench_internet["inet"]
    deployment = deploy_resolvers(inet, seed=77, **RESOLVER_COUNTS)
    survey = ResolverSurvey(
        inet.network, bench_internet["probes"], inet.allocator.next_v4()
    )
    open_entries = survey.run(deployment)
    atlas = AtlasCampaign(inet.network, bench_internet["probes"])
    closed_entries = atlas.run(deployment)
    return {
        "deployment": deployment,
        "open": open_entries,
        "closed": closed_entries,
        "all": open_entries + closed_entries,
    }
