"""Ablation benches for the design choices DESIGN.md calls out.

1. Zone-signing cost vs NSEC3 iteration count (why zones should use 0).
2. NSEC vs NSEC3 signing cost (Item 1's operational argument).
3. Opt-out vs full chains on delegation-heavy zones (Item 5's rationale).
4. Salt length's effect on signing (Item 3: the salt buys nothing).
5. Shared-resolver cache effect on authoritative load (ethics appendix).
"""

import random

import pytest

from repro.dnssec.costmodel import meter
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.engine import ScanEngine
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone


def _zone(n_names=30, n_delegations=0, prefix="ablate"):
    builder = (
        ZoneBuilder(f"{prefix}.test")
        .soa(f"ns1.{prefix}.test", f"h.{prefix}.test")
        .ns(f"ns1.{prefix}.test.")
        .a("ns1", "192.0.2.1")
    )
    for index in range(n_names):
        builder.a(f"host-{index}", f"198.18.0.{index % 250 + 1}")
    for index in range(n_delegations):
        builder.delegate(f"child-{index}", "ns.elsewhere.net.")
    return builder.build()


class TestIterationCostAblation:
    @pytest.mark.parametrize("iterations", [0, 10, 100, 500])
    def test_signing_hash_cost(self, benchmark, iterations):
        def build_and_chain():
            zone = _zone(20, prefix=f"it{iterations}")
            meter.reset()
            sign_zone(
                zone,
                SigningPolicy(nsec3=Nsec3Params(iterations=iterations)),
                rng=random.Random(1),
            )
            return meter.sha1_compressions

        compressions = benchmark.pedantic(build_and_chain, rounds=3, iterations=1)
        print(f"\niterations={iterations}: {compressions} SHA-1 compressions to sign")


class TestDenialMechanismAblation:
    def test_nsec_signing(self, benchmark):
        benchmark.pedantic(
            lambda: sign_zone(_zone(40, prefix="nsec"), SigningPolicy(nsec3=None),
                              rng=random.Random(2)),
            rounds=3,
            iterations=1,
        )

    def test_nsec3_signing(self, benchmark):
        benchmark.pedantic(
            lambda: sign_zone(
                _zone(40, prefix="nsec3"),
                SigningPolicy(nsec3=Nsec3Params(iterations=0)),
                rng=random.Random(2),
            ),
            rounds=3,
            iterations=1,
        )


class TestOptOutAblation:
    def test_chain_size_reduction(self, benchmark):
        """Opt-out shrinks the chain by the number of insecure delegations."""
        full = sign_zone(
            _zone(5, n_delegations=50, prefix="full"),
            SigningPolicy(nsec3=Nsec3Params(iterations=0, opt_out=False)),
            rng=random.Random(3),
        )
        optout = benchmark.pedantic(
            lambda: sign_zone(
                _zone(5, n_delegations=50, prefix="optout"),
                SigningPolicy(nsec3=Nsec3Params(iterations=0, opt_out=True)),
                rng=random.Random(3),
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\nchain size: full={len(full.nsec3_chain)} "
            f"opt-out={len(optout.nsec3_chain)} "
            f"(saved {len(full.nsec3_chain) - len(optout.nsec3_chain)} records)"
        )
        assert len(optout.nsec3_chain) == len(full.nsec3_chain) - 50


class TestSaltAblation:
    @pytest.mark.parametrize("salt_length", [0, 8, 160])
    def test_salt_signing_cost(self, benchmark, salt_length):
        salt = bytes(range(256))[:salt_length]
        benchmark.pedantic(
            lambda: sign_zone(
                _zone(20, prefix=f"salt{salt_length}"),
                SigningPolicy(nsec3=Nsec3Params(iterations=0, salt=salt)),
                rng=random.Random(4),
            ),
            rounds=3,
            iterations=1,
        )


class TestCacheAblation:
    """The ethics argument: one shared resolver absorbs most scan load."""

    def test_shared_resolver_cache_reduces_authoritative_load(
        self, benchmark, bench_internet
    ):
        inet = bench_internet["inet"]
        domains = [d.name for d in bench_internet["domains"][:150]]
        upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="cache-ablate")
        engine = ScanEngine(inet.network, inet.allocator.next_v4(), upstream.ip)

        def sweep():
            before = upstream.engine.queries_sent
            for name in domains:
                engine.query(name, 48, checking_disabled=True)  # DNSKEY
            return upstream.engine.queries_sent - before

        cold_upstream_queries = sweep()
        warm_upstream_queries = benchmark.pedantic(sweep, rounds=1, iterations=1)

        print(
            f"\nauthoritative-side queries for {len(domains)} DNSKEY lookups: "
            f"cold={cold_upstream_queries} warm={warm_upstream_queries} "
            f"(cache hit rate {upstream.cache.hit_rate:.2f})"
        )
        assert warm_upstream_queries < cold_upstream_queries * 0.2
