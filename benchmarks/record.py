"""Record the performance artifacts (``BENCH_5.json``, ``BENCH_7.json``,
``BENCH_8.json``).

Default mode runs the study's dominant workload — the §4.2 resolver
survey at bench scale — twice in separate interpreter processes, once
with every fast path enabled and once with
``REPRO_FASTPATH_DISABLE=all``, and writes wall-clock numbers plus cache
hit/miss counters to ``BENCH_5.json`` in the repository root::

    PYTHONPATH=src python benchmarks/record.py

The equivalence claim (identical survey results with caches on or off)
is asserted inline: both runs must classify every resolver identically.

``--workers-bench`` records ``BENCH_7.json``: the same headline study
run single-process and under the crash-safe campaign supervisor
(``--workers 4``), asserting the reports byte-identical and recording
wall-clock for both, the per-shard build/measure split, and the fleet's
critical path.  It also records ``BENCH_10.json``: the supervised fleet
run cold (empty signed-zone build cache), warm (cache pre-populated by
the cold run), and with ``--disable-fastpath build_cache``, under both a
clean network and a chaos ``kill:`` fleet — asserting all reports
byte-identical to the single-process run, that the warm fleet's
cache-hit counter is nonzero, and recording per-shard build seconds for
the cold/warm comparison against BENCH_7's duplicated-build baseline.

``--scale-bench`` records ``BENCH_8.json``: wall-clock and peak RSS of
the streamed (constant-memory) study across population scales, asserting
the memory profile stays flat while the domain axis grows 10x.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_5.json")


def _measure(telemetry=False):
    """Worker mode: build the testbed, run the survey, dump JSON to stdout.

    With *telemetry*, the full streaming stack (metrics, event journal,
    time-series scraper, progress console) is attached around the survey
    — the configuration the CI perf gate compares against the bare run.
    """
    import dataclasses

    from benchmarks.conftest import BENCH_CONFIG, RESOLVER_COUNTS, TRANCO_SIZE
    from repro.dnssec.validator import verification_memo
    from repro.scanner.atlas import AtlasCampaign
    from repro.scanner.resolver_scan import ResolverSurvey
    from repro.server.authoritative import AuthoritativeServer
    from repro.testbed.internet import build_internet
    from repro.testbed.population import (
        generate_population,
        generate_tlds,
        inject_tail_domains,
    )
    from repro.testbed.resolvers import deploy_resolvers
    from repro.testbed.rfc9276_wild import build_probe_zones
    from repro.testbed.tranco import assign_tranco_ranks

    build_start = time.perf_counter()
    tlds = generate_tlds(BENCH_CONFIG)
    domains = inject_tail_domains(generate_population(BENCH_CONFIG, tlds=tlds))
    domains = assign_tranco_ranks(domains, list_size=TRANCO_SIZE)
    inet = build_internet(domains, tlds, seed=42)
    probes = build_probe_zones(inet)
    build_seconds = time.perf_counter() - build_start

    live = None
    if telemetry:
        from repro import obs
        from repro.obs.live import LiveTelemetry

        obs.enable()
        inet.network.kernel.bind_obs()
        live = LiveTelemetry(
            inet.network.kernel,
            events_out=os.path.join(REPO_ROOT, "bench-events.jsonl"),
            series_out=os.path.join(REPO_ROOT, "bench-series.json"),
            progress=True,
            seed=42,
            label="bench-survey",
            stream=open(os.devnull, "w"),
        )

    survey_start = time.perf_counter()
    deployment = deploy_resolvers(inet, seed=77, **RESOLVER_COUNTS)
    survey = ResolverSurvey(inet.network, probes, inet.allocator.next_v4())
    open_entries = survey.run(deployment)
    closed_entries = AtlasCampaign(inet.network, probes).run(deployment)
    survey_seconds = time.perf_counter() - survey_start
    if live is not None:
        live.finish()

    answer_cache = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
    for host in inet.network._hosts.values():
        if isinstance(host, AuthoritativeServer):
            cache = host.answer_cache
            answer_cache["hits"] += cache.hits
            answer_cache["misses"] += cache.misses
            answer_cache["evictions"] += cache.evictions
            answer_cache["invalidations"] += cache.invalidations

    def _rate(hits, misses):
        total = hits + misses
        return round(hits / total, 4) if total else None

    entries = open_entries + closed_entries
    json.dump(
        {
            "build_seconds": round(build_seconds, 2),
            "survey_seconds": round(survey_seconds, 2),
            "total_seconds": round(build_seconds + survey_seconds, 2),
            "resolvers_classified": len(entries),
            "classifications": sorted(
                f"{entry.resolver.ip}:"
                f"{json.dumps(dataclasses.asdict(entry.classification), sort_keys=True)}"
                for entry in entries
            ),
            "validator_memo": {
                "hits": verification_memo.hits,
                "misses": verification_memo.misses,
                "evictions": verification_memo.evictions,
                "hit_rate": _rate(verification_memo.hits, verification_memo.misses),
            },
            "answer_cache": dict(
                answer_cache,
                hit_rate=_rate(answer_cache["hits"], answer_cache["misses"]),
            ),
        },
        sys.stdout,
    )


def _run_worker(disable, telemetry=False):
    pythonpath = os.pathsep.join([os.path.join(REPO_ROOT, "src"), REPO_ROOT])
    env = dict(os.environ, PYTHONPATH=pythonpath)
    if disable:
        env["REPRO_FASTPATH_DISABLE"] = disable
    else:
        env.pop("REPRO_FASTPATH_DISABLE", None)
    argv = [sys.executable, os.path.abspath(__file__), "--measure"]
    if telemetry:
        argv.append("--telemetry")
    proc = subprocess.run(
        argv,
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def perf_gate(limit=1.05, runs=3):
    """CI perf smoke: the instrumented headline bench must stay within
    *limit* of the bare BENCH_5 wall-clock, measured back-to-back on the
    same machine (interleaved best-of-*runs* pairs, survey phase only —
    the testbed build is identical and telemetry-free in both modes)."""
    bare = instrumented = float("inf")
    for index in range(runs):
        bare = min(bare, _run_worker("")["survey_seconds"])
        instrumented = min(
            instrumented, _run_worker("", telemetry=True)["survey_seconds"]
        )
        print(
            f"  pair {index + 1}/{runs}: best bare {bare}s, "
            f"best instrumented {instrumented}s",
            flush=True,
        )
    ratio = instrumented / bare
    print(f"telemetry perf gate: ratio {ratio:.3f} (limit {limit})")
    if ratio > limit:
        raise SystemExit(
            f"FATAL: instrumented bench {instrumented}s vs bare {bare}s "
            f"— ratio {ratio:.3f} exceeds {limit}"
        )


#: The supervised-fleet bench workload: survey-heavy, so measurement
#: (which shards) dominates the testbed build (which every worker pays).
WORKERS_BENCH_ARGS = [
    "study", "--domains", "200", "--tlds", "30",
    "--resolvers", "64", "--seed", "7",
]


#: The chaos fleet used for the BENCH_10 equivalence runs: every shard
#: takes one seeded SIGKILL a quarter of the way through its units.
BENCH_10_FAULTS = ["--faults", "kill:1.0:1:0.25", "--stall-timeout", "30"]


def _cpu_counts():
    """Both CPU figures a speedup number needs: what the host has and
    what this process may actually use (cgroup/affinity limited)."""
    affinity = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    )
    return {"cpu_count": os.cpu_count(), "cpu_affinity": affinity}


def workers_bench(workers=4):
    """Record ``BENCH_7.json`` (single vs fleet) and ``BENCH_10.json``
    (the signed-zone build cache cold/warm/disabled, clean and chaos)."""
    import shutil
    import tempfile

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))

    def run(extra):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *WORKERS_BENCH_ARGS, *extra],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout, round(time.perf_counter() - start, 2)

    def read_shards(state_dir):
        shard_reports = []
        for shard in range(workers):
            with open(
                os.path.join(state_dir, f"shard-{shard}.done.json"),
                encoding="utf-8",
            ) as handle:
                report = json.load(handle)
            shard_reports.append(
                {
                    "shard": shard,
                    "units": report["units"],
                    "build_seconds": report["build_seconds"],
                    "measure_seconds": report["measure_seconds"],
                    "build_cpu_seconds": report["build_cpu_seconds"],
                    "measure_cpu_seconds": report["measure_cpu_seconds"],
                    "built": report.get("built"),
                    "build_cache": report.get("build_cache"),
                }
            )
        return shard_reports

    def fleet_run(label, single_stdout, cache_from=None, extra=(), keep=False):
        """One supervised run in a fresh state dir; returns its record.

        *cache_from* seeds the new state dir's ``build-cache/`` with a
        previous run's entries — the "warm" configuration. With *keep*
        the state dir survives (the caller reuses its cache and removes
        it); otherwise it is deleted here.
        """
        state_dir = tempfile.mkdtemp(prefix="repro-bench10-")
        try:
            if cache_from is not None:
                shutil.copytree(
                    os.path.join(cache_from, "build-cache"),
                    os.path.join(state_dir, "build-cache"),
                )
            print(f"measuring fleet [{label}] ...", flush=True)
            stdout, wall = run(
                ["--workers", str(workers), "--state-dir", state_dir, *extra]
            )
            print(f"  {wall}s")
            if stdout != single_stdout:
                raise SystemExit(
                    f"FATAL: supervised report [{label}] differs from "
                    "single-process"
                )
            shards = read_shards(state_dir)
            cache_events = {}
            for shard in shards:
                for event, count in (shard["build_cache"] or {}).items():
                    cache_events[event] = cache_events.get(event, 0) + count
            record = {
                "wall_seconds": wall,
                "shard_build_seconds": [s["build_seconds"] for s in shards],
                "max_shard_build_seconds": max(
                    s["build_seconds"] for s in shards
                ),
                "build_cache_events": cache_events,
                "shards": shards,
            }
        except BaseException:
            shutil.rmtree(state_dir, ignore_errors=True)
            raise
        if not keep:
            shutil.rmtree(state_dir, ignore_errors=True)
            return None, record
        return state_dir, record

    print("measuring single-process (--workers 1) ...", flush=True)
    single_stdout, single_seconds = run([])
    print(f"  {single_seconds}s")

    cold_dir = None
    try:
        cold_dir, cold = fleet_run("clean/cold", single_stdout, keep=True)
        __, warm = fleet_run("clean/warm", single_stdout, cache_from=cold_dir)
        __, disabled = fleet_run(
            "clean/disabled",
            single_stdout,
            extra=["--disable-fastpath", "build_cache"],
        )
        __, chaos_cold = fleet_run(
            "chaos/cold", single_stdout, extra=BENCH_10_FAULTS
        )
        __, chaos_warm = fleet_run(
            "chaos/warm",
            single_stdout,
            cache_from=cold_dir,
            extra=BENCH_10_FAULTS,
        )
        __, chaos_disabled = fleet_run(
            "chaos/disabled",
            single_stdout,
            extra=["--disable-fastpath", "build_cache", *BENCH_10_FAULTS],
        )
    finally:
        if cold_dir is not None:
            shutil.rmtree(cold_dir, ignore_errors=True)

    warm_hits = warm["build_cache_events"].get("hit", 0)
    if not warm_hits:
        raise SystemExit("FATAL: warm fleet recorded zero cache hits")

    # --- BENCH_7: single vs (cold) fleet, unchanged shape ------------
    shard_reports = cold["shards"]
    critical_path = max(
        r["build_cpu_seconds"] + r["measure_cpu_seconds"]
        for r in shard_reports
    )
    fleet_seconds = cold["wall_seconds"]
    record = {
        "bench": "supervised fleet vs single process "
                 "(headline study, survey-heavy scale)",
        "workload": " ".join(WORKERS_BENCH_ARGS),
        **_cpu_counts(),
        "workers_1": {"wall_seconds": single_seconds},
        f"workers_{workers}": {
            "wall_seconds": fleet_seconds,
            "shards": shard_reports,
            "critical_path_seconds": round(critical_path, 2),
        },
        "speedup_wall": round(single_seconds / fleet_seconds, 2),
        "speedup_critical_path": round(single_seconds / critical_path, 2),
        "results_identical": True,
    }
    output = os.path.join(REPO_ROOT, "BENCH_7.json")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wall speedup {record['speedup_wall']}x "
        f"(host {record['cpu_count']} cpus, {record['cpu_affinity']} usable); "
        f"critical-path speedup {record['speedup_critical_path']}x; "
        f"reports identical; wrote {output}"
    )

    # --- BENCH_10: the build cache, cold/warm/disabled ----------------
    build_speedup = (
        cold["max_shard_build_seconds"] / warm["max_shard_build_seconds"]
        if warm["max_shard_build_seconds"]
        else None
    )
    record10 = {
        "bench": "signed-zone build cache: supervised fleet cold vs warm "
                 "vs --disable-fastpath build_cache, clean and chaos kill:",
        "workload": " ".join(WORKERS_BENCH_ARGS),
        "chaos_faults": " ".join(BENCH_10_FAULTS),
        **_cpu_counts(),
        "workers": workers,
        "single": {"wall_seconds": single_seconds},
        "clean": {"cold": cold, "warm": warm, "disabled": disabled},
        "chaos": {
            "cold": chaos_cold,
            "warm": chaos_warm,
            "disabled": chaos_disabled,
        },
        "warm_cache_hits": warm_hits,
        "build_speedup_warm_vs_cold": (
            round(build_speedup, 2) if build_speedup else None
        ),
        "build_speedup_warm_vs_disabled": round(
            disabled["max_shard_build_seconds"]
            / warm["max_shard_build_seconds"],
            2,
        ),
        "fleet_beats_single": warm["wall_seconds"] < single_seconds,
        "results_identical": True,
        "note": "shard build seconds: disabled = every worker cold-signs"
                " the whole testbed; cold = the fleet splits signing via"
                " the cache (first needer signs, siblings load); warm ="
                " pure loads. fleet_beats_single is only meaningful with"
                " cpu_affinity >= workers — on fewer cores the fleet"
                " serialises on one CPU and pays spawn overhead, and"
                " BENCH_7's critical-path speedup is the multi-core"
                " predictor.",
    }
    output10 = os.path.join(REPO_ROOT, "BENCH_10.json")
    with open(output10, "w", encoding="utf-8") as handle:
        json.dump(record10, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"build cache: cold max shard build {cold['max_shard_build_seconds']}s"
        f" -> warm {warm['max_shard_build_seconds']}s"
        f" ({record10['build_speedup_warm_vs_cold']}x), {warm_hits} hits; "
        f"all six reports identical; wrote {output10}"
    )


#: The memory-scaling bench workload: the headline study with the
#: survey and TLD axes pinned small (both are O(constant) across
#: population scales) so peak RSS tracks the domain axis alone.
SCALE_BENCH_ARGS = ["--tlds", "50", "--resolvers", "8", "--seed", "7"]

#: Default population scales for ``--scale-bench``. 5,000,000 runs with
#: the same flat profile but takes hours; opt in via the env override.
SCALE_BENCH_DEFAULT = "100000,1000000"


def _run_study_rss(n_domains, env):
    """Run one streamed study in a child process; return its wall-clock
    and true peak RSS from the kernel's per-child rusage (``os.wait4``
    — no tracemalloc tracing, which would multiply wall-clock ~5x)."""
    import tempfile

    argv = [
        sys.executable, "-m", "repro", "study",
        "--domains", str(n_domains), *SCALE_BENCH_ARGS,
    ]
    with tempfile.TemporaryFile() as out, tempfile.TemporaryFile() as err:
        start = time.perf_counter()
        proc = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT, stdout=out, stderr=err
        )
        _, status, rusage = os.wait4(proc.pid, 0)
        wall = round(time.perf_counter() - start, 2)
        proc.returncode = os.waitstatus_to_exitcode(status)
        if proc.returncode != 0:
            err.seek(0)
            raise SystemExit(
                f"FATAL: study at {n_domains} domains exited "
                f"{proc.returncode}:\n{err.read().decode(errors='replace')}"
            )
    # ru_maxrss is KiB on Linux, bytes on macOS.
    rss = rusage.ru_maxrss * (1 if sys.platform == "darwin" else 1024)
    return wall, rss


def scale_bench(scales=None):
    """Record ``BENCH_8.json``: wall-clock and peak RSS of the streamed
    study across population scales, asserting sub-linear memory growth
    (the constant-memory pipeline's headline claim)."""
    if scales is None:
        spec = os.environ.get("REPRO_SCALE_BENCH_NS", SCALE_BENCH_DEFAULT)
        scales = sorted(int(token) for token in spec.split(",") if token.strip())
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    results = {}
    for n_domains in scales:
        print(
            f"measuring streamed study at {n_domains:,} domains ...",
            flush=True,
        )
        wall, rss = _run_study_rss(n_domains, env)
        results[str(n_domains)] = {
            "wall_seconds": wall,
            "peak_rss_bytes": rss,
        }
        print(f"  {wall}s, peak RSS {rss / 1e6:.1f} MB", flush=True)
    smallest, largest = min(scales), max(scales)
    rss_growth = (
        results[str(largest)]["peak_rss_bytes"]
        / results[str(smallest)]["peak_rss_bytes"]
    )
    domain_growth = largest / smallest
    record = {
        "bench": "streamed study memory scaling (constant-memory pipeline)",
        "workload": "study --domains N " + " ".join(SCALE_BENCH_ARGS),
        "scales": results,
        "domain_growth_max_over_min": round(domain_growth, 2),
        "rss_growth_max_over_min": round(rss_growth, 3),
        "sublinear_memory": rss_growth < domain_growth,
        "note": "peak RSS is the kernel's per-child ru_maxrss (os.wait4)."
                " 5,000,000 domains runs with the same flat profile (set"
                " REPRO_SCALE_BENCH_NS=100000,1000000,5000000 to record"
                " it; hours of wall-clock).",
    }
    output = os.path.join(REPO_ROOT, "BENCH_8.json")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"peak-RSS growth {rss_growth:.2f}x over {domain_growth:.0f}x "
        f"domains; wrote {output}"
    )
    if rss_growth >= 4.0:
        raise SystemExit(
            f"FATAL: peak RSS grew {rss_growth:.2f}x from {smallest:,} to "
            f"{largest:,} domains — the streamed pipeline should stay flat"
        )


def main():
    if "--measure" in sys.argv:
        _measure(telemetry="--telemetry" in sys.argv)
        return
    if "--perf-gate" in sys.argv:
        perf_gate()
        return
    if "--workers-bench" in sys.argv:
        workers_bench()
        return
    if "--scale-bench" in sys.argv:
        scale_bench()
        return
    print("measuring with fast paths ON ...", flush=True)
    on = _run_worker("")
    print(f"  {on['total_seconds']}s "
          f"(build {on['build_seconds']}s, survey {on['survey_seconds']}s)")
    print("measuring with REPRO_FASTPATH_DISABLE=all ...", flush=True)
    off = _run_worker("all")
    print(f"  {off['total_seconds']}s "
          f"(build {off['build_seconds']}s, survey {off['survey_seconds']}s)")

    if on.pop("classifications") != off.pop("classifications"):
        raise SystemExit("FATAL: survey results differ with fast paths off")
    speedup = off["total_seconds"] / on["total_seconds"]
    record = {
        "bench": "resolver survey (§4.2 pipeline, bench scale)",
        "fastpaths_on": on,
        "fastpaths_off": off,
        "speedup": round(speedup, 2),
        "results_identical": True,
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"speedup {speedup:.2f}x, results identical; wrote {OUTPUT}")


if __name__ == "__main__":
    main()
