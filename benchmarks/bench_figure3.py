"""Figure 3 (a–d): response-code shares of validating resolvers vs it-N.

Paper: NXDOMAIN-with-AD share drops in steps at 50/100/150 iterations;
SERVFAIL share jumps after 150 and stays flat; the same shape across all
four (open/closed × IPv4/IPv6) categories.
"""

from repro.analysis.figures import figure3_series

GRID = (1, 10, 25, 50, 51, 100, 101, 150, 151, 200, 300, 400, 500)

CATEGORIES = (
    ("open", "v4", "(a) Open, IPv4"),
    ("open", "v6", "(b) Open, IPv6"),
    ("closed", "v4", "(c) Closed, IPv4"),
    ("closed", "v6", "(d) Closed, IPv6"),
)


def _entries_for(survey, access, family):
    pool = survey["open"] if access == "open" else survey["closed"]
    return [e for e in pool if e.resolver.family == family]


def test_figure3(benchmark, resolver_survey):
    def build_all():
        return {
            (access, family): figure3_series(
                _entries_for(resolver_survey, access, family), title
            )
            for access, family, title in CATEGORIES
        }

    figures = benchmark(build_all)

    for access, family, title in CATEGORIES:
        fig = figures[(access, family)]
        print(f"\n=== Figure 3 {title}: {fig.validators} validators ===")
        print(f"{'it-N':>6s} {'NXDOMAIN%':>10s} {'AD+NX%':>8s} {'SERVFAIL%':>10s}")
        for count in GRID:
            if count in fig.series:
                nx, adnx, servfail = fig.series[count]
                print(f"{count:6d} {nx:10.1f} {adnx:8.1f} {servfail:10.1f}")

    # Shape assertions on the aggregate (open v4 is the largest category).
    fig = figures[("open", "v4")]
    assert fig.validators >= 20
    ad = {count: fig.series[count][1] for count in fig.series}
    servfail = {count: fig.series[count][2] for count in fig.series}
    # AD share falls monotonically across the vendor thresholds.
    assert ad[1] > ad[101] > ad[151]
    # The drop at 101 reflects the Google-style 100-iteration limit.
    assert ad[100] > ad[101]
    # SERVFAIL is a step after 150 and stays high.
    assert servfail[151] > servfail[150]
    assert servfail[500] >= servfail[151] * 0.9
