"""Figure 2: CDF of popularity ranks of NSEC3-enabled domains.

Paper: both curves (zero-iteration share and saltless share by rank)
increase uniformly — compliance is rank-independent — while popular
domains are more compliant overall than the full population (22.8 % vs
12.2 % zero-iteration; 23.6 % vs 8.6 % saltless).
"""

from repro.analysis.figures import figure1_series, figure2_series

from benchmarks.conftest import TRANCO_SIZE


def test_figure2(benchmark, bench_internet, domain_scan):
    results = domain_scan["results"]
    specs = bench_internet["domains"]
    fig = benchmark(figure2_series, results, specs, TRANCO_SIZE)

    print("\n=== Figure 2: popularity-rank CDFs (measured) ===")
    print(f"{'rank ≤':>8s} {'NSEC3 (%)':>10s} {'0-iter (%)':>11s} {'no-salt (%)':>12s}")
    for upper, nsec3_pct, zero_pct, nosalt_pct in fig.rows(buckets=10):
        print(f"{upper:8d} {nsec3_pct:10.1f} {zero_pct:11.1f} {nosalt_pct:12.1f}")

    counts = fig.counts
    ranked_zero_pct = (
        100.0 * counts["zero_iterations"] / counts["ranked_nsec3"]
        if counts["ranked_nsec3"]
        else 0.0
    )
    overall = figure1_series(results)
    overall_zero_pct = 100.0 * overall.iterations_cdf.fraction_at_or_below(0)
    print(f"\nranked NSEC3 domains: {counts['ranked_nsec3']}")
    print(
        f"zero-iteration among ranked: paper=22.8 %  measured={ranked_zero_pct:.1f} % "
        f"(overall paper=12.2 %, measured={overall_zero_pct:.1f} %)"
    )

    # Shape 1: uniform rank distribution — the CDF at the midpoint bucket
    # is near 50 %.
    midpoint = fig.nsec3_rank_cdf.fraction_at_or_below(TRANCO_SIZE // 2)
    assert 0.35 < midpoint < 0.65
    # Shape 2: popular domains more compliant than the population at large.
    if counts["ranked_nsec3"] >= 20:
        assert ranked_zero_pct > overall_zero_pct
