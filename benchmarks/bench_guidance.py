"""Table 1: the twelve RFC 9276 guidance items, evaluated over the testbed.

Table 1 itself is the rule set, not data; this bench measures the
compliance engine's throughput and prints each item with the measured
adherence across both measured populations.
"""

from repro.core.guidance import GUIDANCE, Audience
from repro.core.zone_compliance import check_zone_compliance


def test_guidance_engine_throughput(benchmark, domain_scan):
    observations = [
        r.observation for r in domain_scan["results"] if r.observation is not None
    ]

    def audit_all():
        return [check_zone_compliance(obs) for obs in observations]

    reports = benchmark(audit_all)
    assert len(reports) == len(observations)


def test_guidance_adherence_table(benchmark, domain_scan, resolver_survey):
    reports = [r.report for r in domain_scan["results"] if r.nsec3_enabled]

    def collect_validators():
        return [
            e.classification
            for e in resolver_survey["all"]
            if e.classification.is_validating
        ]

    classifications = benchmark(collect_validators)
    n_zones = len(reports)
    n_resolvers = len(classifications)

    zone_adherence = {
        2: sum(r.item2_zero_iterations for r in reports),
        3: sum(r.item3_no_salt for r in reports),
        4: sum(r.item4_optout_ok for r in reports),
    }
    item6 = sum(c.implements_item6 for c in classifications)
    item8 = sum(c.implements_item8 for c in classifications)
    resolver_adherence = {
        6: item6,
        7: item6 - sum(c.item7_violation for c in classifications),
        8: item8,
        10: sum(c.ede27_support for c in classifications),
        12: sum(not c.item12_gap for c in classifications),
    }

    print("\n=== Table 1: guidance items with measured adherence ===")
    for entry in GUIDANCE:
        if entry.audience is Audience.AUTHORITATIVE:
            count = zone_adherence.get(entry.number)
            total = n_zones
        else:
            count = resolver_adherence.get(entry.number)
            total = n_resolvers
        if count is None:
            note = "(not externally measurable)"
        else:
            note = f"{count}/{total} ({100.0 * count / total:.1f} %)" if total else "n/a"
        print(f"  Item {entry.number:2d} [{entry.keyword.value:15s}] {note:28s} {entry.summary[:60]}")

    # Item 2 (MUST) is the least followed zone-side rule — the paper's point.
    assert zone_adherence[2] < n_zones * 0.3
