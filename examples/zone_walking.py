#!/usr/bin/env python3
"""Zone walking: why NSEC3 exists, and why iterations barely help.

Part 1 walks an NSEC-signed zone: each denial response names the *next*
existing owner, so repeatedly querying just past it enumerates the whole
zone — the privacy leak NSEC3 was designed to stop (paper §2.2).

Part 2 runs an offline dictionary attack against the same zone signed with
NSEC3: hashes of common labels (www, mail, api, …) are compared against
the chain. RFC 9276's rationale in one table: the dictionary recovers the
guessable names at 0 iterations and at 500 iterations alike — extra
iterations only multiply *defender* cost (see the hash-count column).

Usage:  python examples/zone_walking.py
"""

import random

from repro.dns.base32 import b32hex_encode
from repro.dns.name import Name
from repro.dnssec.costmodel import meter
from repro.dnssec.nsec3hash import nsec3_hash
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone

SECRET_LABELS = ("www", "mail", "api", "staging", "vpn", "db-internal", "zq7x1")
DICTIONARY = (
    "www", "mail", "api", "ftp", "staging", "dev", "test", "vpn", "ns1",
    "admin", "portal", "shop", "blog", "db", "db-internal", "intranet",
)


def build_zone():
    builder = (
        ZoneBuilder("victim.test")
        .soa("ns1.victim.test", "h.victim.test")
        .ns("ns1.victim.test.")
        .a("ns1", "192.0.2.1")
    )
    for label in SECRET_LABELS:
        builder.a(label, "198.18.0.1")
    return builder.build()


def walk_nsec_zone():
    zone = sign_zone(build_zone(), SigningPolicy(nsec3=None), rng=random.Random(1))
    print("=== Part 1: walking the NSEC chain ===")
    discovered = []
    current = zone.nsec_chain.entries[0]
    apex = Name.from_text("victim.test")
    while True:
        discovered.append(current.owner_name)
        next_name = current.rdata.next_name
        if next_name == discovered[0]:
            break
        current = zone.nsec_chain.find_matching(next_name)
    names = [n.to_text() for n in discovered]
    print(f"enumerated {len(names)} names in {len(names)} queries:")
    for name in names:
        print(f"  {name}")
    secrets = {f"{label}.victim.test." for label in SECRET_LABELS}
    assert secrets.issubset(set(names))
    print("→ every name leaked, including db-internal and the random one.\n")


def dictionary_attack(iterations):
    params = Nsec3Params(iterations=iterations, salt=b"\x5a\x5a")
    zone = sign_zone(build_zone(), SigningPolicy(nsec3=params), rng=random.Random(2))
    chain_hashes = {entry.owner_hash for entry in zone.nsec3_chain}
    meter.reset()
    recovered = []
    for word in DICTIONARY:
        candidate = Name.from_text(f"{word}.victim.test")
        digest = nsec3_hash(candidate.canonical_wire(), params.salt, iterations)
        if digest in chain_hashes:
            recovered.append(word)
    return recovered, meter.sha1_compressions


def main():
    walk_nsec_zone()

    print("=== Part 2: offline dictionary attack vs NSEC3 iterations ===")
    print(f"{'iterations':>11s} {'recovered labels':>40s} {'attacker SHA-1 ops':>19s}")
    for iterations in (0, 1, 10, 150, 500):
        recovered, cost = dictionary_attack(iterations)
        print(f"{iterations:11d} {', '.join(recovered):>40s} {cost:19d}")
    print(
        "\n→ the same guessable labels fall at every iteration count; only the\n"
        "  un-guessable 'zq7x1' stays hidden. Extra iterations scale the cost\n"
        "  for attacker and *defender* alike — hence RFC 9276 Item 2: use 0."
    )


if __name__ == "__main__":
    main()
