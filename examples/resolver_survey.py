#!/usr/bin/env python3
"""The paper's §4.2/§5.2 resolver survey on a synthetic Internet.

Deploys a population of open and closed resolvers running real vendor
policies (BIND9, Unbound, Google, Cloudflare, Technitium, broken CPE
boxes, …), stands up the 49 ``rfc9276-in-the-wild.com`` probe zones,
probes every resolver, and prints the classification results: Figure 3's
series and the §5.2 headline numbers.

Usage:  python examples/resolver_survey.py [n_open_v4]
"""

import sys
import time
from collections import Counter

from repro.analysis.figures import figure3_series
from repro.analysis.stats import resolver_headline_stats
from repro.scanner.atlas import AtlasCampaign
from repro.scanner.resolver_scan import ResolverSurvey
from repro.testbed.internet import build_internet
from repro.testbed.population import PopulationConfig, generate_population, generate_tlds
from repro.testbed.resolvers import deploy_resolvers
from repro.testbed.rfc9276_wild import build_probe_zones


def main(open_v4=60):
    config = PopulationConfig(
        n_domains=20, n_tlds=40, tld_dnssec=36, tld_nsec3=33,
        tld_zero_iterations=15, tld_identity_digital=7,
        tld_saltless=15, tld_salt8=12, tld_salt10=1,
    )
    tlds = generate_tlds(config)
    domains = generate_population(config, tlds=tlds)
    inet = build_internet(domains, tlds, seed=11)
    probes = build_probe_zones(inet)
    print(f"probe zones online: {len(probes.zones) - 1} children of {probes.parent_name}")

    deployment = deploy_resolvers(
        inet,
        open_v4=open_v4,
        open_v6=open_v4 // 4,
        closed_v4=open_v4 // 5,
        closed_v6=open_v4 // 8,
        seed=99,
    )
    print(f"deployed {len(deployment)} resolvers:")
    for (kind, policy), count in sorted(
        Counter((d.kind, d.policy_name) for d in deployment).items()
    ):
        print(f"  {count:4d} × {kind}/{policy}")

    start = time.perf_counter()
    survey = ResolverSurvey(inet.network, probes, inet.allocator.next_v4())
    open_entries = survey.run(deployment)
    atlas = AtlasCampaign(inet.network, probes)
    closed_entries = atlas.run(deployment)
    print(
        f"\nprobed {len(open_entries)} open + {len(closed_entries)} closed "
        f"resolvers in {time.perf_counter() - start:.1f}s "
        f"({len(probes.all_probe_keys())} zones each)"
    )

    headline = resolver_headline_stats(
        [e.classification for e in open_entries + closed_entries]
    )
    print("\n=== §5.2 headline numbers (paper vs this run) ===")
    for label, paper, measured in headline.rows():
        print(f"  {label:40s} paper={paper:>6}  measured={measured}")

    for access, family, title in (
        ("open", "v4", "(a) Open, IPv4"),
        ("open", "v6", "(b) Open, IPv6"),
        ("closed", "v4", "(c) Closed, IPv4"),
        ("closed", "v6", "(d) Closed, IPv6"),
    ):
        pool = open_entries if access == "open" else closed_entries
        entries = [e for e in pool if e.resolver.family == family]
        fig = figure3_series(entries, title)
        print(f"\n=== Figure 3 {title}: {fig.validators} validators ===")
        print(f"{'it-N':>6s} {'NXDOMAIN%':>10s} {'AD+NX%':>8s} {'SERVFAIL%':>10s}")
        for count in (1, 25, 50, 51, 100, 101, 150, 151, 300, 500):
            if count in fig.series:
                nx, adnx, servfail = fig.series[count]
                print(f"{count:6d} {nx:10.1f} {adnx:8.1f} {servfail:10.1f}")

    # Server-side query log: who actually contacted the probe infrastructure
    # (the paper's forwarder-identification methodology).
    log = probes.query_log
    print(f"\nprobe nameserver observed {len(log)} queries from "
          f"{len(log.by_source)} distinct sources")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
