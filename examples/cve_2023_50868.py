#!/usr/bin/env python3
"""CVE-2023-50868: NSEC3 closest-encloser proofs as a resolver DoS.

Demonstrates the vulnerability motivating RFC 9276's urgency: a validating
resolver asked for non-existent names under a high-iteration zone must
re-hash several names with (iterations + 1) SHA-1 passes each — CPU an
attacker spends nothing to trigger. The demo measures the amplification on
an unpatched ("legacy") resolver and then shows the patched policy
(insecure above 50, per the 2023 fixes) capping the damage.

Usage:  python examples/cve_2023_50868.py
"""

from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.dnssec.costmodel import meter
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.testbed.internet import build_internet
from repro.testbed.population import PopulationConfig, generate_population, generate_tlds
from repro.testbed.rfc9276_wild import build_probe_zones


def denial_cost(stub, resolver_ip, probes, key, unique):
    """SHA-1 compressions the resolver spends validating one denial."""
    before = meter.snapshot()
    answer = stub.ask(resolver_ip, probes.probe_name(key, unique), RdataType.A)
    delta = meter.snapshot() - before
    return answer, delta.sha1_compressions


def main():
    config = PopulationConfig(
        n_domains=10, n_tlds=40, tld_dnssec=36, tld_nsec3=33,
        tld_zero_iterations=15, tld_identity_digital=7,
        tld_saltless=15, tld_salt8=12, tld_salt10=1,
    )
    tlds = generate_tlds(config)
    inet = build_internet(generate_population(config, tlds=tlds), tlds, seed=3)
    probes = build_probe_zones(inet)
    stub = StubClient(inet.network, inet.allocator.next_v4())

    victim = inet.make_resolver(VENDOR_POLICIES["legacy"], name="unpatched")
    print("=== Unpatched resolver (no iteration limit) ===")
    print(f"{'zone':>10s} {'rcode':>9s} {'SHA-1 compressions':>20s} {'amplification':>14s}")
    __, baseline = denial_cost(stub, victim.ip, probes, 1, "base")
    print(f"{'it-1':>10s} {'NXDOMAIN':>9s} {baseline:20d} {'1.0x':>14s}")
    for count in (50, 150, 500):
        answer, cost = denial_cost(stub, victim.ip, probes, count, f"atk{count}")
        print(
            f"{'it-' + str(count):>10s} {Rcode.to_text(answer.rcode):>9s} "
            f"{cost:20d} {cost / baseline:13.1f}x"
        )
    print("(Gruza et al. measured up to 72× CPU instructions on real resolvers)")

    patched = inet.make_resolver(VENDOR_POLICIES["bind9-2023"], name="patched")
    print("\n=== Patched resolver (insecure above 50, CVE-2023-50868 fix) ===")
    __, base2 = denial_cost(stub, patched.ip, probes, 1, "pbase")
    print(f"{'it-1':>10s} {'NXDOMAIN':>9s} {base2:20d} {'1.0x':>14s}")
    for count in (50, 150, 500):
        answer, cost = denial_cost(stub, patched.ip, probes, count, f"patk{count}")
        note = " (resolver skipped the proof)" if count > 50 else ""
        print(
            f"{'it-' + str(count):>10s} {Rcode.to_text(answer.rcode):>9s} "
            f"{cost:20d} {cost / base2:13.1f}x{note}"
        )
    print(
        "\nThe patched policy answers insecurely above its limit instead of "
        "paying the hash bill — Items 6/8 of RFC 9276 in action.\n"
        "(The meter is global: the remaining above-limit cost is the\n"
        " *authoritative server* assembling the proof the resolver declined\n"
        " to verify; the resolver-side share is what the patch eliminates.)"
    )


if __name__ == "__main__":
    main()
