#!/usr/bin/env python3
"""The paper's §4.1/§5.1 domain pipeline on a synthetic Internet.

Builds a calibrated population of registered domains under real-ratio TLDs,
scans them zdns-style through a shared caching resolver, and prints the
paper's domain-side results: the headline compliance numbers, Figure 1's
CDFs, and Table 2's operator breakdown.

Usage:  python examples/scan_domains.py [n_domains]
"""

import sys
import time

from repro.analysis.figures import figure1_series
from repro.analysis.stats import domain_headline_stats
from repro.analysis.tables import format_operator_table, operator_table
from repro.resolver.policy import VENDOR_POLICIES
from repro.scanner.dnskey_scan import dnskey_scan
from repro.scanner.engine import ScanEngine
from repro.scanner.nsec3_scan import nsec3_scan
from repro.testbed.internet import build_internet
from repro.testbed.population import (
    PopulationConfig,
    generate_population,
    generate_tlds,
    inject_tail_domains,
)
from repro.testbed.sources import curate_domain_list, enable_paper_axfr


def main(n_domains=800):
    config = PopulationConfig(
        n_domains=n_domains,
        n_tlds=120,
        tld_dnssec=112,
        tld_nsec3=108,
        tld_zero_iterations=57,
        tld_identity_digital=37,
        tld_saltless=56,
        tld_salt8=46,
        tld_salt10=1,
    )
    print(f"generating population of {n_domains} registered domains…")
    tlds = generate_tlds(config)
    domains = inject_tail_domains(generate_population(config, tlds=tlds))

    start = time.perf_counter()
    inet = build_internet(domains, tlds, seed=7)
    print(
        f"built {len(inet.domain_zones)} signed zones under {len(tlds)} TLDs "
        f"in {time.perf_counter() - start:.1f}s"
    )

    # Stage 0 (§4.1 data collection): curate the domain list from CZDS
    # zone files, ccTLD AXFRs, CT logs, and passive DNS — instead of
    # cheating with the generator's ground truth.
    enable_paper_axfr(inet)
    curated = curate_domain_list(inet, inet.allocator.next_v4())
    print(
        f"\nstage 0: curated {len(curated)} unique registered domains "
        f"({curated.duplicates_removed} duplicates removed; sources: "
        f"czds={curated.per_source['czds']}, axfr={curated.per_source['axfr']}, "
        f"ct={curated.per_source['ct_logs']}, pdns={curated.per_source['passive_dns']}; "
        f"ground-truth coverage {curated.ground_truth_coverage:.1%})"
    )

    # The shared resolver standing in for Cloudflare 1.1.1.1.
    upstream = inet.make_resolver(VENDOR_POLICIES["cloudflare"], name="1.1.1.1-sim")
    engine = ScanEngine(
        inet.network, inet.allocator.next_v4(), upstream.ip, max_qps=14_700
    )

    print("\nstage 1: DNSKEY scan…")
    enabled = dnskey_scan(engine, curated.domains)
    print(f"  {len(enabled)}/{len(curated)} curated domains are DNSSEC-enabled")

    print("stage 2: NSEC3PARAM / NSEC3 / NS scan…")
    results = nsec3_scan(engine, enabled)
    print(
        f"  {engine.stats.queries} queries total, "
        f"resolver cache hit rate {upstream.cache.hit_rate:.2f}"
    )

    headline = domain_headline_stats(results, total_domains=len(curated))
    print("\n=== §5.1 headline numbers (paper vs this run) ===")
    for label, paper, measured in headline.rows():
        print(f"  {label:42s} paper={paper:>6}  measured={measured}")

    fig = figure1_series(results)
    print("\n=== Figure 1: CDF rows ===")
    print(f"{'x':>5s} {'iterations ≤ x (%)':>20s} {'salt ≤ x bytes (%)':>20s}")
    for x, it_pct, salt_pct in fig.rows((0, 1, 5, 10, 25, 50, 150, 500)):
        print(f"{x:5d} {it_pct:20.1f} {salt_pct:20.1f}")

    print("\n=== Table 2: operator breakdown ===")
    print(format_operator_table(operator_table(results)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
