#!/usr/bin/env python3
"""Quickstart: sign a zone with NSEC3, serve it, resolve it, audit it.

Runs a three-node simulated Internet (root → com → example.com), signs
example.com with deliberately non-compliant NSEC3 parameters, resolves a
few names through a validating resolver, and audits the zone against
RFC 9276 — the core loop of the paper in ~100 lines.

Usage:  python examples/quickstart.py
"""

import random

from repro.core.zone_compliance import Nsec3Observation, check_zone_compliance
from repro.crypto.keys import make_ds
from repro.dns.rcode import Rcode
from repro.dns.rdata import A
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.net.network import Network
from repro.resolver.policy import VENDOR_POLICIES
from repro.resolver.stub import StubClient
from repro.resolver.validating import ValidatingResolver
from repro.server.authoritative import AuthoritativeServer
from repro.zone.builder import ZoneBuilder
from repro.zone.nsec3chain import Nsec3Params
from repro.zone.signing import SigningPolicy, sign_zone


def main():
    rng = random.Random(2024)
    net = Network(seed=1)

    # --- 1. Build and sign example.com with NSEC3 (10 iterations, salted:
    #        exactly what RFC 9276 says not to do).
    example = (
        ZoneBuilder("example.com")
        .soa("ns1.example.com", "hostmaster.example.com")
        .ns("ns1.example.com.")
        .a("ns1", "192.0.2.53")
        .a("www", "192.0.2.80")
        .txt("@", "hello from the quickstart zone")
        .build()
    )
    params = Nsec3Params(iterations=10, salt=bytes.fromhex("DEADBEEF"))
    sign_zone(example, SigningPolicy(nsec3=params), rng=rng)
    print(f"signed {example.origin} — NSEC3 chain of {len(example.nsec3_chain)} records")

    # --- 2. Build the parent tree: com and the root, each delegating with DS.
    com = (
        ZoneBuilder("com")
        .soa("ns1.gtld.net", "h.gtld.net")
        .ns("ns1.com.")
        .a("ns1", "192.0.2.52")
        .delegate("example", "ns1.example.com.",
                  ds=make_ds("example.com", example.keys[0].dnskey))
        .build()
    )
    com.add("ns1.example.com", RdataType.A, 3600, A("192.0.2.53"))
    sign_zone(com, SigningPolicy(nsec3=Nsec3Params(0, b"", opt_out=True)), rng=rng)

    root = (
        ZoneBuilder(".")
        .soa("a.root.", "h.root.")
        .ns("a.root.")
        .a("a.root.", "192.0.2.1")
        .delegate("com.", "ns1.com.", ds=make_ds("com", com.keys[0].dnskey))
        .build()
    )
    root.add("ns1.com", RdataType.A, 3600, A("192.0.2.52"))
    sign_zone(root, SigningPolicy(nsec3=None), rng=rng)

    # --- 3. Host everything and attach a validating resolver (BIND9-style
    #        policy: insecure above 150 iterations).
    for ip, zone in (("192.0.2.1", root), ("192.0.2.52", com), ("192.0.2.53", example)):
        server = AuthoritativeServer(f"auth-{ip}", net)
        server.add_zone(zone)
        net.attach(ip, server)

    trust_anchor = RRset(".", RdataType.DS, 3600, [make_ds(".", root.keys[0].dnskey)])
    resolver = ValidatingResolver(
        net, "198.51.100.53", ["192.0.2.1"], trust_anchor,
        policy=VENDOR_POLICIES["bind9-2021"],
    )
    net.attach("198.51.100.53", resolver)

    # --- 4. Resolve through the full chain of trust.
    stub = StubClient(net, "203.0.113.10")
    for qname, qtype in (
        ("www.example.com", RdataType.A),
        ("example.com", RdataType.TXT),
        ("missing.example.com", RdataType.A),
    ):
        answer = stub.ask(resolver.ip, qname, qtype)
        records = [r.to_text() for rrset in answer.answer for r in rrset
                   if int(rrset.rrtype) == int(qtype)]
        print(
            f"{qname:24s} {RdataType.to_text(qtype):4s} → "
            f"{Rcode.to_text(answer.rcode):9s} AD={answer.ad} {records}"
        )

    # --- 5. Audit the zone against RFC 9276 Items 1-5.
    observation = Nsec3Observation(
        domain="example.com",
        dnssec_enabled=True,
        nsec3param_records=((1, params.iterations, params.salt),),
        nsec3_records=((1, params.iterations, params.salt),),
    )
    report = check_zone_compliance(observation)
    print(f"\nRFC 9276 audit of example.com (compliant={report.rfc9276_compliant}):")
    for violation in report.violations:
        print(f"  ✗ {violation}")
    print("\nFix: re-sign with Nsec3Params(iterations=0, salt=b'') — zeros are heroes.")


if __name__ == "__main__":
    main()
